"""The rule matcher: enumerate the satisfying ground instances of a rule.

This is the join engine behind step 1 of the ``T_P`` operator.  Given a rule
and an object base it enumerates every substitution (variables to OIDs) that
makes all body literals true.

Strategy — a backtracking search over a literal ordering:

1. literals that are already ground act as *filters* and are checked first
   (cheapest pruning);
2. a positive built-in ``X = e`` whose right-hand side is computable acts as
   a *binder*;
3. otherwise a positive version-term or update-term with the most bound
   positions acts as a *generator*, drawing candidate facts from the object
   base indexes;
4. negated literals and comparisons wait until they are ground.

The ordering decisions depend only on which variables are bound, so they are
precompiled once per body into a :class:`~repro.core.plans.JoinPlan` and the
default matcher just walks the plan (:func:`match_rule` / :func:`match_body`).
The original per-node dynamic chooser is kept, byte for byte, as
:func:`match_rule_dynamic` — the fallback for bodies the planner cannot
order statically, and the reference implementation the semi-naive engine is
differentially tested against.  :func:`match_rule_seeded` is the
delta-restricted variant: it grows bindings outward from the facts added by
the previous ``T_P`` application instead of re-joining the whole base.

Every complete assignment is re-verified against the authoritative truth
functions of :mod:`repro.core.truth`, so the index-driven generators and the
precompiled plans can only affect speed, never semantics.  A brute-force
reference matcher that enumerates the active domain is provided for
differential testing.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import product
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.core.atoms import BuiltinAtom, Literal, UpdateAtom, VersionAtom
from repro.core.caches import register_lru_cache
from repro.core.errors import BuiltinError, EvaluationError
from repro.core.exprs import evaluate_expr, expr_variables
from repro.core.facts import Fact
from repro.core.objectbase import ObjectBase
from repro.core.plans import (
    BINDER,
    FILTER,
    JoinPlan,
    compile_plan,
    rule_plan,
    seed_facts,
    var_sort_key,
)
from repro.core.rules import UpdateRule
from repro.core.terms import (
    Oid,
    Term,
    UpdateKind,
    Var,
    VersionId,
    is_ground,
)
from repro.core.truth import literal_true
from repro.unify.substitution import apply_term
from repro.unify.unification import match_term

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.objectbase import Delta

__all__ = [
    "match_rule",
    "match_body",
    "match_rule_dynamic",
    "match_rule_seeded",
    "match_rule_bruteforce",
]

Binding = dict[Var, Oid]


def match_rule(rule: UpdateRule, base: ObjectBase) -> Iterator[Binding]:
    """Yield every substitution making the body of ``rule`` true in ``base``.

    Substitutions are restricted to the rule's variables and yielded at most
    once each.  Built-in type errors (e.g. arithmetic on a symbolic OID)
    fail the candidate instead of raising (DESIGN.md D6).

    Uses the precompiled join plan of the rule; yielded dicts are fresh per
    answer and safe to keep, but callers must not mutate the base while the
    iterator is live.
    """
    plan = rule_plan(rule).full_plan
    if plan is None:
        return match_rule_dynamic(rule, base)
    return _match_planned(plan, base)


@lru_cache(maxsize=4096)
def _body_plan(body: tuple[Literal, ...]) -> JoinPlan | None:
    return compile_plan(body)


register_lru_cache("grounding.body_plan", _body_plan)


def match_body(
    body: tuple[Literal, ...],
    base: ObjectBase,
    *,
    rule_name: str = "<body>",
) -> Iterator[Binding]:
    """Like :func:`match_rule` for a bare body (used by the query API)."""
    body = tuple(body)
    plan = _body_plan(body)
    if plan is None:
        return match_body_dynamic(body, base, rule_name=rule_name)
    # Prefer the codegen'd executor (lazy import: codegen sits above this
    # module).  Same results; _match_planned stays as the oracle.
    from repro.core.codegen import codegen_enabled, compiled_body

    if codegen_enabled():
        compiled = compiled_body(body)
        if compiled is not None:
            return iter(compiled.bindings(base))
    return _match_planned(plan, base)


# ----------------------------------------------------------------------
# planned search (the default engine)
# ----------------------------------------------------------------------


def _match_planned(plan: JoinPlan, base: ObjectBase) -> Iterator[Binding]:
    results = _search_planned(plan.steps, 0, {}, base)
    if plan.generator_count <= 1:
        # At most one generator: two distinct generated facts always bind
        # some variable differently (every differing fact position is either
        # a variable or a constant of the atom), so duplicates are
        # impossible and the dedup bookkeeping is pure overhead.
        yield from results
        return
    seen: set[tuple] = set()
    key_vars = plan.key_vars
    for binding in results:
        key = tuple(binding[v] for v in key_vars)
        if key not in seen:
            seen.add(key)
            yield binding


def _search_planned(
    steps: tuple, index: int, binding: Binding, base: ObjectBase
) -> Iterator[Binding]:
    """Walk the plan: filters and binders advance in place, generators are
    the only branch points."""
    n = len(steps)
    while index < n:
        step = steps[index]
        action = step.action
        if action == FILTER:
            if not _check_ground(step.literal, binding, base):
                return
            index += 1
        elif action == BINDER:
            extension = _bind_equality(step.literal.atom, binding)
            if extension is None:
                return
            binding = extension
            index += 1
        else:  # GENERATE
            literal = step.literal
            index += 1
            if step.verify:
                for extension in _generate(literal, binding, base, step.index_cols):
                    # Re-verify with the authoritative semantics.
                    if _check_ground(literal, extension, base):
                        yield from _search_planned(steps, index, extension, base)
            else:
                # Exact generator (see plans.PlanStep.verify).
                for extension in _generate(literal, binding, base, step.index_cols):
                    yield from _search_planned(steps, index, extension, base)
            return
    yield binding


# ----------------------------------------------------------------------
# delta-restricted (seeded) matching
# ----------------------------------------------------------------------


def match_rule_seeded(
    rule: UpdateRule,
    base: ObjectBase,
    delta: "Delta",
    positions: tuple[int, ...],
) -> Iterator[Binding]:
    """Semi-naive matching: every yielded binding has at least one seed
    literal matching a fact *added* by the previous ``T_P`` application.

    Only sound when :func:`repro.core.plans.classify` returned these seed
    positions — i.e. when every other way the rule could newly fire has
    been ruled out by its dependency signature.
    """
    plans = rule_plan(rule)
    signature = plans.signature
    seen: set[tuple] = set()
    dynamic_rest: list | None = None
    dynamic_key_vars: tuple[Var, ...] | None = None
    for position in positions:
        atom = rule.body[position].atom  # a positive VersionAtom
        facts = seed_facts(delta, signature, position)
        if not facts:
            continue
        plan = plans.seed_plan(position)
        for fact in facts:
            seeded = match_term(atom.host, fact.host)
            if seeded is None:
                continue
            seeded = _match_application(atom.args, atom.result, fact, seeded)
            if seeded is None:
                continue
            if plan is not None:
                results = _search_planned(plan.steps, 0, seeded, base)
                key_vars = plan.key_vars
            else:
                if dynamic_rest is None:
                    dynamic_rest = [
                        (literal, literal.variables)
                        for i, literal in enumerate(rule.body)
                        if i != position
                    ]
                    names: set[Var] = set()
                    for literal in rule.body:
                        names |= literal.variables
                    dynamic_key_vars = tuple(sorted(names, key=var_sort_key))
                results = _search(dynamic_rest, seeded, base, rule.name)
                key_vars = dynamic_key_vars
            for binding in results:
                key = tuple(binding[v] for v in key_vars)
                if key not in seen:
                    seen.add(key)
                    yield binding


# ----------------------------------------------------------------------
# dynamic reference matcher (fallback + differential baseline)
# ----------------------------------------------------------------------


#: A body literal paired with its (precomputed) variable set — computing
#: ``atom.variables`` per search step dominated the matcher's profile.
_AnnotatedLiteral = tuple[Literal, frozenset[Var]]


def match_rule_dynamic(rule: UpdateRule, base: ObjectBase) -> Iterator[Binding]:
    """The original per-node dynamic-ordering matcher (the naive reference
    path, ``EvaluationOptions(semi_naive=False)``)."""
    return match_body_dynamic(rule.body, base, rule_name=rule.name)


def match_body_dynamic(
    body: tuple[Literal, ...],
    base: ObjectBase,
    *,
    rule_name: str = "<body>",
) -> Iterator[Binding]:
    seen: set[frozenset] = set()
    annotated = [(literal, literal.variables) for literal in body]
    for binding in _search(annotated, {}, base, rule_name):
        key = frozenset(binding.items())
        if key not in seen:
            seen.add(key)
            yield dict(binding)


def _search(
    remaining: list[_AnnotatedLiteral],
    binding: Binding,
    base: ObjectBase,
    rule_name: str,
) -> Iterator[Binding]:
    if not remaining:
        yield binding
        return

    index = _choose_literal(remaining, binding, base)
    if index is None:
        raise EvaluationError(
            f"rule {rule_name!r}: no literal is evaluable under the current "
            f"binding — the rule is unsafe (this should have been caught by "
            f"the safety check)"
        )
    literal, variables = remaining[index]
    rest = remaining[:index] + remaining[index + 1 :]

    if _is_ground_under(variables, binding):
        if _check_ground(literal, binding, base):
            yield from _search(rest, binding, base, rule_name)
        return

    atom = literal.atom
    if isinstance(atom, BuiltinAtom):
        extension = _bind_equality(atom, binding)
        if extension is not None:
            yield from _search(rest, extension, base, rule_name)
        return

    for extension in _generate(literal, binding, base):
        # Re-verify the now-ground literal with the authoritative semantics.
        if _check_ground(literal, extension, base):
            yield from _search(rest, extension, base, rule_name)


# ----------------------------------------------------------------------
# literal selection
# ----------------------------------------------------------------------


def _is_ground_under(variables: frozenset[Var], binding: Binding) -> bool:
    return all(v in binding for v in variables)


def _choose_literal(
    remaining: list[_AnnotatedLiteral], binding: Binding, base: ObjectBase
) -> int | None:
    """Pick the next literal: filters, then binders, then the most
    constrained generator.  Returns ``None`` when stuck (unsafe rule)."""
    best_generator: int | None = None
    best_score = float("-inf")
    for i, (literal, variables) in enumerate(remaining):
        if _is_ground_under(variables, binding):
            return i  # a filter: evaluate immediately
        atom = literal.atom
        if isinstance(atom, BuiltinAtom):
            if literal.positive and atom.op == "=" and _equality_ready(atom, binding):
                return i  # a binder
            continue  # comparisons wait until ground
        if not literal.positive:
            continue  # negations wait until ground
        score = _generator_score(atom, variables, binding)
        if score > best_score:
            best_score = score
            best_generator = i
    return best_generator


def _equality_ready(atom: BuiltinAtom, binding: Binding) -> bool:
    for target, source in ((atom.left, atom.right), (atom.right, atom.left)):
        if (
            isinstance(target, Var)
            and target not in binding
            and all(v in binding for v in expr_variables(source))
        ):
            return True
    return False


def _generator_score(atom, variables: frozenset[Var], binding: Binding) -> int:
    """Heuristic: prefer generators with more already-bound variables and
    with a ground host (host-indexed lookup beats a method scan)."""
    bound = sum(1 for v in variables if v in binding)
    host = atom.host if isinstance(atom, VersionAtom) else atom.target
    host_ground = all(v in binding for v in _term_vars(host))
    kind_penalty = 0
    if isinstance(atom, UpdateAtom):
        kind_penalty = 1  # update-term generators scan the version map
    return bound * 4 + (2 if host_ground else 0) - kind_penalty


def _term_vars(term: Term):
    while isinstance(term, VersionId):
        term = term.base
    return (term,) if isinstance(term, Var) else ()


# ----------------------------------------------------------------------
# evaluation of ground literals
# ----------------------------------------------------------------------


def _check_ground(literal: Literal, binding: Binding, base: ObjectBase) -> bool:
    atom = literal.atom
    if isinstance(atom, VersionAtom):
        # Hot path: definition 1 of Section 3 is plain fact membership, so
        # build the fact directly instead of substituting the atom (the
        # constructor validation dominated the matcher profile).  The
        # authoritative form lives in truth.version_atom_true.
        pattern = atom.host
        if type(pattern) is Var:
            host = binding.get(pattern, pattern)
        else:
            host = apply_term(pattern, binding)
        args = tuple(
            binding[a] if isinstance(a, Var) else a for a in atom.args
        )
        result = binding[atom.result] if isinstance(atom.result, Var) else atom.result
        present = Fact(host, atom.method, args, result) in base
        return present if literal.positive else not present
    try:
        return literal_true(base, literal.substitute(binding))
    except BuiltinError:
        # Type-mismatched built-ins fail the candidate regardless of
        # polarity (DESIGN.md D6) instead of aborting the evaluation.
        return False


def _bind_equality(atom: BuiltinAtom, binding: Binding) -> Binding | None:
    """Bind the unbound side of ``X = e``; ``None`` when the candidate dies."""
    for target, source in ((atom.left, atom.right), (atom.right, atom.left)):
        if (
            isinstance(target, Var)
            and target not in binding
            and all(v in binding for v in expr_variables(source))
        ):
            try:
                value = evaluate_expr(source, binding)
            except BuiltinError:
                return None
            extension = dict(binding)
            extension[target] = value
            return extension
    return None  # not actually ready; should not happen


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------


def _generate(
    literal: Literal,
    binding: Binding,
    base: ObjectBase,
    index_cols: tuple[int, ...] = (),
) -> Iterator[Binding]:
    atom = literal.atom
    if isinstance(atom, VersionAtom):
        yield from _generate_version_atom(atom, binding, base, index_cols)
    elif isinstance(atom, UpdateAtom):
        yield from _generate_update_atom(atom, binding, base, index_cols)
    else:  # pragma: no cover - selection never sends builtins here
        raise EvaluationError(f"cannot generate bindings from {atom}")


def _match_application(
    atom_args: tuple[Term, ...],
    atom_result: Term | None,
    fact: Fact,
    binding: Binding,
) -> Binding | None:
    """Match argument and result patterns of an atom against a fact."""
    work = binding
    for pattern, value in zip(atom_args, fact.args):
        work = _match_position(pattern, value, work)
        if work is None:
            return None
    if atom_result is not None:
        work = _match_position(atom_result, fact.result, work)
    return work


def _match_position(pattern: Term, value: Oid, binding: Binding) -> Binding | None:
    if isinstance(pattern, Var):
        bound = binding.get(pattern)
        if bound is None:
            extension = dict(binding)
            extension[pattern] = value
            return extension
        return binding if bound == value else None
    return binding if pattern == value else None


def _host_candidates(
    pattern: Term,
    binding: Binding,
    method: str,
    arity: int,
    base: ObjectBase,
    index_cols: tuple[int, ...] = (),
    atom=None,
):
    """Facts possibly matching ``pattern.method@...`` under ``binding``.

    Access-path order: the ``(host, method)`` index when the host is bound;
    otherwise the smallest argument/result-column bucket among the
    plan-selected ``index_cols`` (see
    :class:`~repro.core.plans.PlanStep.index_cols`); a full
    ``(method, arity)`` scan only when nothing is bound.  Returns the live
    index sets (no defensive copy — the matcher never mutates the base
    while a search is in flight)."""
    if type(pattern) is Var:
        # Matcher bindings map plain variables straight to ground OIDs, so
        # the generic term rewriting can be skipped on the hottest shape.
        concrete = binding.get(pattern)
        if concrete is not None:
            return base.iter_facts_by_host_method(concrete, method, arity)
    else:
        concrete = apply_term(pattern, binding)
        if is_ground(concrete):
            return base.iter_facts_by_host_method(concrete, method, arity)
    if index_cols and atom is not None:
        best = None
        for column in index_cols:
            term = atom.result if column < 0 else atom.args[column]
            value = binding.get(term) if type(term) is Var else term
            if value is None:
                continue  # dynamic callers may pass partially bound columns
            bucket = base.iter_facts_by_arg(method, arity, column, value)
            if not bucket:
                # A bound column with an empty bucket rules out every
                # candidate: the generator can prune the whole branch.
                return ()
            if best is None or len(bucket) < len(best):
                best = bucket
        if best is not None:
            return best
    return base.iter_facts_by_method(method, arity)


def _generate_version_atom(
    atom: VersionAtom,
    binding: Binding,
    base: ObjectBase,
    index_cols: tuple[int, ...] = (),
) -> Iterator[Binding]:
    candidates = _host_candidates(
        atom.host, binding, atom.method, len(atom.args), base, index_cols, atom
    )
    for fact in candidates:
        host_binding = match_term(atom.host, fact.host, binding)
        if host_binding is None:
            continue
        full = _match_application(atom.args, atom.result, fact, host_binding)
        if full is not None:
            yield full


def _generate_update_atom(
    atom: UpdateAtom,
    binding: Binding,
    base: ObjectBase,
    index_cols: tuple[int, ...] = (),
) -> Iterator[Binding]:
    """Generate candidate bindings for a positive body update-term.

    The truth conditions of Section 3 (definition 3) guide the access paths;
    the caller re-verifies each candidate, so these only need to be complete,
    not exact.
    """
    assert atom.method is not None and atom.result is not None
    arity = len(atom.args)

    if atom.kind is UpdateKind.INSERT:
        # true iff ins(v).m -> r ∈ I: a plain indexed lookup.
        new_pattern = atom.new_version()
        for fact in _host_candidates(
            new_pattern, binding, atom.method, arity, base, index_cols, atom
        ):
            host_binding = match_term(new_pattern, fact.host, binding)
            if host_binding is None:
                continue
            full = _match_application(atom.args, atom.result, fact, host_binding)
            if full is not None:
                yield full
        return

    # del / mod: the transition target must be an *existing* version
    # kind(v); enumerate those from the exists map, then read the old value
    # from v* and (for mod) the new value from the new version's state.
    # When the transition host is already bound the exists map has exactly
    # one candidate — probe it directly instead of scanning every version
    # (the same fast path the INSERT branch gets from its host index).
    new_pattern = atom.new_version()
    concrete = apply_term(new_pattern, binding)
    if is_ground(concrete):
        versions: Iterable[Term] = (
            (concrete,) if base.version_exists(concrete) else ()
        )
    else:
        versions = base.iter_existing_versions()
    for version in versions:
        host_binding = match_term(new_pattern, version, binding)
        if host_binding is None:
            continue
        target = apply_term(atom.target, host_binding)
        v_star = base.v_star(target)
        if v_star is None:
            continue
        for old_fact in base.iter_facts_by_host_method(v_star, atom.method, arity):
            old_binding = _match_application(
                atom.args, atom.result, old_fact, host_binding
            )
            if old_binding is None:
                continue
            if atom.kind is UpdateKind.DELETE:
                yield old_binding
                continue
            # MODIFY: bind the new value from the state of mod(v).
            assert atom.result2 is not None
            result2 = (
                old_binding.get(atom.result2)
                if isinstance(atom.result2, Var)
                else atom.result2
            )
            if result2 is not None:
                yield old_binding  # result2 already pinned; verification decides
                continue
            for new_fact in base.iter_facts_by_host_method(version, atom.method, arity):
                if new_fact.args != old_fact.args:
                    continue
                extension = _match_position(atom.result2, new_fact.result, old_binding)
                if extension is not None:
                    yield extension


# ----------------------------------------------------------------------
# brute-force reference (differential testing)
# ----------------------------------------------------------------------


def match_rule_bruteforce(rule: UpdateRule, base: ObjectBase) -> list[Binding]:
    """Enumerate the active domain — the paper's "∀-quantified over O" read
    literally.  Exponential; only for differential tests on small bases.

    The active domain is the OIDs of the base plus the OIDs mentioned by the
    rule itself.  For rules whose built-ins *compute* new values (``S' = S *
    1.1``), equation binding is applied on top of domain enumeration for the
    remaining variables.
    """
    domain = set(base.oid_universe())
    domain |= _rule_constants(rule)

    # Variables bindable only through '=' must not be domain-enumerated.
    computed = _computed_variables(rule)
    enumerated = sorted(rule.variables - computed, key=lambda v: v.name)
    results: list[Binding] = []
    for values in product(sorted(domain, key=str), repeat=len(enumerated)):
        binding: Binding = dict(zip(enumerated, values))
        full = _solve_computed(rule, binding)
        if full is None:
            continue
        if all(_check_ground(lit, full, base) for lit in rule.body):
            results.append(full)
    return results


def _rule_constants(rule: UpdateRule) -> set[Oid]:
    constants: set[Oid] = set()

    def walk_term(term: Term) -> None:
        while isinstance(term, VersionId):
            term = term.base
        if isinstance(term, Oid):
            constants.add(term)

    def walk_expr(expr) -> None:
        from repro.core.exprs import BinOp, Neg

        if isinstance(expr, Oid):
            constants.add(expr)
        elif isinstance(expr, BinOp):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, Neg):
            walk_expr(expr.operand)

    atoms = [lit.atom for lit in rule.body] + [rule.head]
    for atom in atoms:
        if isinstance(atom, VersionAtom):
            walk_term(atom.host)
            for arg in atom.args:
                walk_term(arg)
            walk_term(atom.result)
        elif isinstance(atom, UpdateAtom):
            walk_term(atom.target)
            for arg in atom.args:
                walk_term(arg)
            if atom.result is not None:
                walk_term(atom.result)
            if atom.result2 is not None:
                walk_term(atom.result2)
        elif isinstance(atom, BuiltinAtom):
            walk_expr(atom.left)
            walk_expr(atom.right)
    return constants


def _computed_variables(rule: UpdateRule) -> frozenset[Var]:
    """Variables that only '=' built-ins can bind (not in any positive
    version-/update-term)."""
    from_facts: set[Var] = set()
    for literal in rule.body:
        if literal.positive and isinstance(literal.atom, (VersionAtom, UpdateAtom)):
            from_facts |= literal.atom.variables
    return frozenset(rule.variables - from_facts)


def _solve_computed(rule: UpdateRule, binding: Binding) -> Binding | None:
    """Bind computed variables through '=' chains; None if impossible."""
    work = dict(binding)
    pending = [
        lit.atom
        for lit in rule.body
        if lit.positive
        and isinstance(lit.atom, BuiltinAtom)
        and lit.atom.op == "="
    ]
    progress = True
    while pending and progress:
        progress = False
        for eq in list(pending):
            extension = _bind_equality(eq, work)
            if extension is not None and extension != work:
                work = extension
                pending.remove(eq)
                progress = True
            elif all(v in work for v in eq.variables):
                pending.remove(eq)
                progress = True
    if any(v not in work for v in rule.variables):
        return None
    return work
