"""Plan compilation: specialized, set-at-a-time join closures per body.

The planned matcher of :mod:`repro.core.grounding` already fixed the literal
order and the access paths statically, but still *interprets* the plan tuple
at a time: every candidate fact costs a ``dict(binding)`` copy in
``_match_position``, an atom-kind dispatch, and a re-derivation of the access
path the plan chose long ago.  This module removes that interpretive layer by
generating one specialized Python function per :class:`~repro.core.plans.JoinPlan`:

* **slot-based bindings** — a partial match is a plain tuple whose layout
  (variable → slot index) is fixed at compile time; extending a match is
  tuple concatenation, never a dict copy;
* **inlined constants and hoisted probes** — the atom's method names, bound
  OIDs and VID kinds become closure globals, and the base's index accessors
  (``iter_facts_by_host_method`` / ``iter_facts_by_arg`` /
  ``iter_facts_by_method``) are bound to locals once per call;
* **set-at-a-time execution** — the generated function maps a whole *list*
  of rows through each plan step at once (filters are list comprehensions,
  generators are batch joins).  A generator step whose probe and field
  checks do not depend on the current row materializes its extension tuples
  **once** from the index bucket and extends every row with them
  (filter → extend), instead of re-scanning the bucket per row;
* **dedup keys only when needed** — like the interpreter, duplicate
  elimination over ``plan.key_vars`` is emitted only when
  ``generator_count > 1``, and the key is an :func:`operator.itemgetter`
  over precomputed slot indexes.

Semantics are pinned to the interpreted walker, which stays in place as the
differential oracle (with the naive dynamic matcher below it):

* version-term generators are *exact* (``PlanStep.verify`` is False) and are
  compiled to direct index loops;
* update-term generators and filters keep the authoritative re-verification:
  they bridge into :func:`repro.core.grounding._generate` /
  ``_check_ground`` through a thin dict adapter, so definition 3 of
  Section 3 has exactly one implementation;
* built-in filters and binders compile the expression tree to nested
  closures that reproduce :func:`repro.core.exprs.evaluate_expr` —
  including exact integer division and ``BuiltinError`` → candidate-fails
  (never raises) behaviour.

Compilation failures are deliberately *not* swallowed: the emitter covers
every shape :func:`repro.core.plans.compile_plan` can produce, and the test
suite proves it.  Bodies the planner itself cannot order (``plan is None``)
simply have no compiled form and callers fall back to the dynamic matcher.

``REPRO_NO_CODEGEN=1`` disables the whole backend at run time (the
interpreted planned matcher takes over, same results), and the compile
caches are registered with :mod:`repro.core.caches` as ``codegen.rule`` /
``codegen.body`` / ``codegen.backend``.
"""

from __future__ import annotations

import os
from functools import lru_cache
from operator import itemgetter
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.atoms import BuiltinAtom, Literal, UpdateAtom, VersionAtom
from repro.core.caches import register_cache, register_lru_cache
from repro.core.errors import BuiltinError, TermError
from repro.core.exprs import BinOp, Neg, _numeric, expr_variables
from repro.core.facts import Fact
from repro.core.grounding import _body_plan, _check_ground, _generate
from repro.core.plans import (
    BINDER,
    FILTER,
    JoinPlan,
    PlanStep,
    rule_plan,
    seed_facts,
    var_sort_key,
)
from repro.core.terms import Oid, Var, VersionId, VersionVar, is_ground
from repro.unify.substitution import apply_term

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.objectbase import Delta, ObjectBase
    from repro.core.rules import UpdateRule

__all__ = [
    "codegen_enabled",
    "CompiledBody",
    "CompiledRule",
    "compiled_body",
    "compiled_rule",
    "match_rule_compiled",
    "match_rule_seeded_compiled",
]

Binding = dict[Var, Oid]
Row = tuple

#: Backend counters surfaced through the cache registry (``codegen.backend``).
_STATS = {
    "bodies_compiled": 0,
    "seed_matchers_compiled": 0,
    "batch_steps": 0,
    "loop_steps": 0,
}


def codegen_enabled() -> bool:
    """True unless the ``REPRO_NO_CODEGEN`` escape hatch is set.

    Read per call (cheap) so tests and operators can flip the flag in a
    running process; ``""`` and ``"0"`` count as *not* set.
    """
    return os.environ.get("REPRO_NO_CODEGEN", "0") in ("", "0")


# ----------------------------------------------------------------------
# expression compilation (built-in filters and binders)
# ----------------------------------------------------------------------


def _compile_var_load(var: Var, slot: int, strict: bool) -> Callable[[Row], Oid]:
    """Load a variable's value from its row slot.

    Plain variables always hold OIDs (the matcher's sort discipline), so
    they load unchecked.  Version variables may hold VIDs; in a *binder*
    context that is a ``BuiltinError`` (candidate fails), in a ground
    *filter* context the interpreter's substitute-then-evaluate pipeline
    raises ``TermError`` — ``strict`` selects which to mirror.
    """
    if type(var) is Var:
        return lambda row: row[slot]

    def load(row: Row) -> Oid:
        value = row[slot]
        if isinstance(value, Oid):
            return value
        if strict:
            raise TermError(f"not an expression: {value!r}")
        raise BuiltinError(f"variable {var} bound to a version identity")

    return load


def _compile_expr(
    expr, slot_of: dict[Var, int], *, strict: bool = False
) -> Callable[[Row], Oid]:
    """Compile an arithmetic expression to a row closure.

    Mirrors :func:`repro.core.exprs.evaluate_expr` exactly, including the
    integer-exact division rule and every ``BuiltinError`` site.
    """
    if isinstance(expr, Oid):
        return lambda row, _c=expr: _c
    if isinstance(expr, Var):
        return _compile_var_load(expr, slot_of[expr], strict)
    if isinstance(expr, Neg):
        inner = _compile_expr(expr.operand, slot_of, strict=strict)
        return lambda row: Oid(-_numeric(inner(row), "negation"))
    if isinstance(expr, BinOp):
        left = _compile_expr(expr.left, slot_of, strict=strict)
        right = _compile_expr(expr.right, slot_of, strict=strict)
        op = expr.op
        context = f"operand of {op}"
        if op == "+":
            return lambda row: Oid(
                _numeric(left(row), context) + _numeric(right(row), context)
            )
        if op == "-":
            return lambda row: Oid(
                _numeric(left(row), context) - _numeric(right(row), context)
            )
        if op == "*":
            return lambda row: Oid(
                _numeric(left(row), context) * _numeric(right(row), context)
            )

        def divide(row: Row) -> Oid:
            a = _numeric(left(row), context)
            b = _numeric(right(row), context)
            if b == 0:
                raise BuiltinError("division by zero in a built-in atom")
            if isinstance(a, int) and isinstance(b, int) and a % b == 0:
                return Oid(a // b)
            return Oid(a / b)

        return divide
    raise TermError(f"not an expression: {expr!r}")  # pragma: no cover


def _builtin_filter(
    atom: BuiltinAtom, positive: bool, slot_of: dict[Var, int]
) -> Callable[[Row], bool]:
    """A row predicate mirroring ``literal_true`` on a ground built-in,
    with ``BuiltinError`` failing the candidate regardless of polarity
    (the ``_check_ground`` contract, DESIGN.md D6)."""
    left = _compile_expr(atom.left, slot_of, strict=True)
    right = _compile_expr(atom.right, slot_of, strict=True)
    op = atom.op

    if op in ("=", "!="):
        want_equal = op == "="

        def predicate(row: Row) -> bool:
            try:
                equal = left(row).value == right(row).value
            except BuiltinError:
                return False
            value = equal if want_equal else not equal
            return value if positive else not value

        return predicate

    def compare(row: Row) -> bool:
        try:
            a = left(row)
            b = right(row)
            if not (a.is_numeric and b.is_numeric):
                return False  # BuiltinError in the interpreter: candidate dies
            av, bv = a.value, b.value
            if op == "<":
                value = av < bv
            elif op == "<=":
                value = av <= bv
            elif op == ">":
                value = av > bv
            else:  # >=
                value = av >= bv
        except BuiltinError:
            return False
        return value if positive else not value

    return compare


# ----------------------------------------------------------------------
# bridges into the authoritative update-term semantics
# ----------------------------------------------------------------------


def _update_filter(
    literal: Literal, in_slots: tuple[tuple[Var, int], ...]
) -> Callable[["ObjectBase", Row], bool]:
    """A ground update-term filter: rebuild the dict binding and delegate to
    ``_check_ground`` so definition 3 has exactly one implementation."""

    def predicate(base: "ObjectBase", row: Row) -> bool:
        binding = {var: row[slot] for var, slot in in_slots}
        return _check_ground(literal, binding, base)

    return predicate


def _update_generator(
    literal: Literal,
    index_cols: tuple[int, ...],
    in_slots: tuple[tuple[Var, int], ...],
    out_vars: tuple[Var, ...],
) -> Callable[["ObjectBase", list[Row]], list[Row]]:
    """A batch update-term generator bridging into the interpreted
    ``_generate`` + re-verify pipeline (``PlanStep.verify`` is always True
    for update-term generators)."""

    def generate(base: "ObjectBase", rows: list[Row]) -> list[Row]:
        out: list[Row] = []
        append = out.append
        for row in rows:
            binding = {var: row[slot] for var, slot in in_slots}
            for extension in _generate(literal, binding, base, index_cols):
                if _check_ground(literal, extension, base):
                    append(row + tuple(extension[v] for v in out_vars))
        return out

    return generate


def _pick_bucket(base: "ObjectBase", method: str, arity: int, cols_vals):
    """Runtime mirror of the multi-column branch of
    ``grounding._host_candidates``: the smallest bound-column bucket, with
    any empty bucket pruning the whole step."""
    best = None
    for column, value in cols_vals:
        bucket = base.iter_facts_by_arg(method, arity, column, value)
        if not bucket:
            return ()
        if best is None or len(bucket) < len(best):
            best = bucket
    if best is not None:
        return best
    return base.iter_facts_by_method(method, arity)  # pragma: no cover


# ----------------------------------------------------------------------
# the source emitter
# ----------------------------------------------------------------------


class _Emitter:
    """Accumulates generated source plus the closure globals it references."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lines: list[str] = []
        self.namespace: dict[str, object] = {
            "Fact": Fact,
            "VersionId": VersionId,
            "BuiltinError": BuiltinError,
            "_pick_bucket": _pick_bucket,
        }
        self._counter = 0

    def const(self, value, prefix: str = "_C") -> str:
        self._counter += 1
        label = f"{prefix}{self._counter}"
        self.namespace[label] = value
        return label

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def build(self, fn_name: str):
        source = "\n".join(self.lines) + "\n"
        code = compile(source, f"<codegen:{self.name}>", "exec")
        exec(code, self.namespace)
        return self.namespace[fn_name], source


def _tuple_src(parts: Sequence[str]) -> str:
    """Source for a tuple literal (correct for the empty and 1-ary cases)."""
    if not parts:
        return "()"
    return "(" + ", ".join(parts) + ",)"


def _bound_term_src(em: _Emitter, term, slot_of: dict[Var, int]) -> str:
    """Source expression rebuilding a fully-bound term from the row."""
    if is_ground(term):
        return em.const(term)
    if isinstance(term, VersionId):
        return (
            f"VersionId({em.const(term.kind, '_K')}, "
            f"{_bound_term_src(em, term.base, slot_of)})"
        )
    return f"r[{slot_of[term]}]"  # a bound Var / VersionVar


def _emit_filter(
    em: _Emitter, step: PlanStep, slot_of: dict[Var, int]
) -> None:
    literal = step.literal
    atom = literal.atom
    if isinstance(atom, VersionAtom):
        # Mirror of the _check_ground fast path: plain fact membership.
        host = _bound_term_src(em, atom.host, slot_of)
        args = _tuple_src(
            [_bound_term_src(em, a, slot_of) for a in atom.args]
        )
        result = _bound_term_src(em, atom.result, slot_of)
        fact = f"Fact({host}, {em.const(atom.method, '_M')}, {args}, {result})"
        condition = f"has({fact})" if literal.positive else f"not has({fact})"
        em.emit(1, f"rows = [r for r in rows if {condition}]")
    elif isinstance(atom, BuiltinAtom):
        label = em.const(
            _builtin_filter(atom, literal.positive, slot_of), "_B"
        )
        em.emit(1, f"rows = [r for r in rows if {label}(r)]")
    else:  # UpdateAtom — delegate to the authoritative semantics
        label = em.const(
            _update_filter(literal, tuple(slot_of.items())), "_U"
        )
        em.emit(1, f"rows = [r for r in rows if {label}(base, r)]")


def _emit_binder(
    em: _Emitter, step: PlanStep, slot_of: dict[Var, int]
) -> None:
    atom = step.literal.atom
    target = None
    source = None
    bound = set(slot_of)
    # Direction order mirrors grounding._bind_equality / plans._binder_target.
    for candidate, other in ((atom.left, atom.right), (atom.right, atom.left)):
        if (
            isinstance(candidate, Var)
            and candidate not in bound
            and all(v in bound for v in expr_variables(other))
        ):
            target, source = candidate, other
            break
    assert target is not None, "binder step with no bindable side"
    label = em.const(_compile_expr(source, slot_of), "_E")
    em.emit(1, "out = []")
    em.emit(1, "app = out.append")
    em.emit(1, "for r in rows:")
    em.emit(2, "try:")
    em.emit(3, f"v = {label}(r)")
    em.emit(2, "except BuiltinError:")
    em.emit(3, "continue")
    em.emit(2, "app(r + (v,))")
    em.emit(1, "rows = out")
    slot_of[target] = len(slot_of)


def _emit_fact_checks(
    em: _Emitter,
    atom,
    slot_of: dict[Var, int],
    *,
    indent: int,
    skip_col: int | None,
    check_host: bool,
) -> tuple[dict[Var, str], bool]:
    """Emit the per-fact checks of a version-term generator (or seed
    matcher) at ``indent``, reading the candidate from ``_f``.

    Returns ``(new_locals, row_dependent)`` where ``new_locals`` maps each
    newly-bound variable to the local that holds its value, in binding order
    (host, then arguments, then result), and ``row_dependent`` reports
    whether any emitted check reads the current row.
    """
    new_locals: dict[Var, str] = {}
    row_dependent = False

    kinds: list = []
    inner = atom.host
    while isinstance(inner, VersionId):
        kinds.append(inner.kind)
        inner = inner.base

    if check_host:
        if not isinstance(inner, Var):
            # Fully ground host: one whole-term comparison.
            em.emit(indent, f"if _f.host != {em.const(atom.host)}:")
            em.emit(indent + 1, "continue")
        elif inner in slot_of:
            host = _bound_term_src_for_fact(em, kinds, inner, slot_of)
            em.emit(indent, f"if _f.host != {host}:")
            em.emit(indent + 1, "continue")
            row_dependent = True
        else:
            # Destructure the VID chain, binding the innermost variable.
            em.emit(indent, "_h = _f.host")
            for kind in kinds:
                label = em.const(kind, "_K")
                em.emit(
                    indent,
                    f"if type(_h) is not VersionId or _h.kind is not {label}:",
                )
                em.emit(indent + 1, "continue")
                em.emit(indent, "_h = _h.base")
            if type(inner) is Var:
                # Plain variables bind OIDs only (the matcher's sort rules);
                # version variables bind any remaining VID.
                em.emit(indent, "if type(_h) is not Oid:")
                em.emit(indent + 1, "continue")
            local = em.fresh("_v")
            em.emit(indent, f"{local} = _h")
            new_locals[inner] = local

    positions: list[tuple[int, object, str]] = [
        (j, pattern, f"_f.args[{j}]") for j, pattern in enumerate(atom.args)
    ]
    if atom.result is not None:
        positions.append((-1, atom.result, "_f.result"))
    for column, pattern, access in positions:
        if column == skip_col:
            continue  # the probe already guaranteed equality on this column
        if isinstance(pattern, Var):
            if pattern in new_locals:
                em.emit(indent, f"if {access} != {new_locals[pattern]}:")
                em.emit(indent + 1, "continue")
            elif pattern in slot_of:
                em.emit(indent, f"if {access} != r[{slot_of[pattern]}]:")
                em.emit(indent + 1, "continue")
                row_dependent = True
            else:
                local = em.fresh("_v")
                em.emit(indent, f"{local} = {access}")
                new_locals[pattern] = local
        else:
            em.emit(indent, f"if {access} != {em.const(pattern)}:")
            em.emit(indent + 1, "continue")
    return new_locals, row_dependent


def _bound_term_src_for_fact(
    em: _Emitter, kinds: list, inner: Var, slot_of: dict[Var, int]
) -> str:
    src = f"r[{slot_of[inner]}]"
    for kind in reversed(kinds):
        src = f"VersionId({em.const(kind, '_K')}, {src})"
    return src


def _emit_version_generator(
    em: _Emitter, step: PlanStep, slot_of: dict[Var, int]
) -> None:
    """Compile an exact version-term generator (``verify`` is False: the
    candidates come from the base's own index and every position is checked
    against the pattern, so membership holds by construction)."""
    atom = step.literal.atom
    arity = len(atom.args)
    method = em.const(atom.method, "_M")

    kinds: list = []
    inner = atom.host
    while isinstance(inner, VersionId):
        kinds.append(inner.kind)
        inner = inner.base

    skip_col: int | None = None
    check_host = False
    probe_row_dependent = False

    if not isinstance(inner, Var):
        # Ground host: the (host, method, arity) bucket is exact on all three.
        probe = f"probe_hm({em.const(atom.host)}, {method}, {arity})"
    elif inner in slot_of:
        host = _bound_term_src_for_fact(em, kinds, inner, slot_of)
        probe = f"probe_hm({host}, {method}, {arity})"
        probe_row_dependent = True
    else:
        check_host = True
        cols = step.index_cols
        if len(cols) > 1:
            # Mirror the interpreter: smallest bucket wins, empty prunes.
            parts = []
            for column in cols:
                term = atom.result if column < 0 else atom.args[column]
                if isinstance(term, Var):
                    parts.append(f"({column}, r[{slot_of[term]}])")
                    probe_row_dependent = True
                else:
                    parts.append(f"({column}, {em.const(term)})")
            probe = (
                f"_pick_bucket(base, {method}, {arity}, "
                f"{_tuple_src(parts)})"
            )
        elif cols:
            column = cols[0]
            term = atom.result if column < 0 else atom.args[column]
            if isinstance(term, Var):
                value = f"r[{slot_of[term]}]"
                probe_row_dependent = True
            else:
                value = em.const(term)
            probe = f"probe_arg({method}, {arity}, {column}, {value})"
            skip_col = column
        else:
            probe = f"probe_m({method}, {arity})"

    if probe_row_dependent:
        # The probe reads the row: plain nested loop over rows × bucket.
        new_locals = _emit_loop_generator(
            em, atom, slot_of, probe, skip_col, check_host
        )
        _STATS["loop_steps"] += 1
    else:
        new_locals = _emit_batch_or_loop_generator(
            em, atom, slot_of, probe, skip_col, check_host
        )

    unbound = {v for v in step.variables if v not in slot_of}
    assert set(new_locals) == unbound, (
        f"codegen missed variables {unbound - set(new_locals)} "
        f"in generator {step.literal}"
    )
    for var in new_locals:
        slot_of[var] = len(slot_of)


def _emit_loop_generator(
    em: _Emitter,
    atom,
    slot_of: dict[Var, int],
    probe: str,
    skip_col: int | None,
    check_host: bool,
) -> dict[Var, str]:
    em.emit(1, "out = []")
    em.emit(1, "app = out.append")
    em.emit(1, "for r in rows:")
    em.emit(2, f"for _f in {probe}:")
    new_locals, _ = _emit_fact_checks(
        em, atom, slot_of, indent=3, skip_col=skip_col, check_host=check_host
    )
    extension = _tuple_src(list(new_locals.values()))
    em.emit(3, f"app(r + {extension})")
    em.emit(1, "rows = out")
    em.emit(1, "if not rows:")
    em.emit(2, "return rows")
    return new_locals


def _emit_batch_or_loop_generator(
    em: _Emitter,
    atom,
    slot_of: dict[Var, int],
    probe: str,
    skip_col: int | None,
    check_host: bool,
) -> dict[Var, str]:
    """Try the set-at-a-time form: when the per-fact checks are also
    row-independent, materialize the extension tuples once and cross them
    with the rows (filter → extend); otherwise fall back to the loop."""
    checkpoint = len(em.lines)
    ext = em.fresh("_ext")
    em.emit(1, f"{ext} = []")
    em.emit(1, f"ea = {ext}.append")
    em.emit(1, f"for _f in {probe}:")
    new_locals, row_dependent = _emit_fact_checks(
        em, atom, slot_of, indent=2, skip_col=skip_col, check_host=check_host
    )
    if row_dependent:
        # Some check reads r: rewind and emit the row-major loop instead.
        del em.lines[checkpoint:]
        _STATS["loop_steps"] += 1
        return _emit_loop_generator(
            em, atom, slot_of, probe, skip_col, check_host
        )
    extension = _tuple_src(list(new_locals.values()))
    em.emit(2, f"ea({extension})")
    em.emit(1, f"if not {ext}:")
    em.emit(2, "return []")
    em.emit(1, f"rows = [r + e for r in rows for e in {ext}]")
    _STATS["batch_steps"] += 1
    return new_locals


def _emit_update_generator(
    em: _Emitter, step: PlanStep, slot_of: dict[Var, int]
) -> None:
    out_vars = tuple(
        sorted(
            (v for v in step.variables if v not in slot_of),
            key=var_sort_key,
        )
    )
    generator = _update_generator(
        step.literal, step.index_cols, tuple(slot_of.items()), out_vars
    )
    label = em.const(generator, "_G")
    em.emit(1, f"rows = {label}(base, rows)")
    em.emit(1, "if not rows:")
    em.emit(2, "return rows")
    for var in out_vars:
        slot_of[var] = len(slot_of)


# ----------------------------------------------------------------------
# compiled artifacts
# ----------------------------------------------------------------------


class CompiledBody:
    """One body's compiled executor: a batch function over slot rows.

    ``slots`` is the variable layout (slot index → variable); ``key_getter``
    projects a row onto the plan's ``key_vars`` order for deduplication.
    ``source`` keeps the generated text for introspection and tests.
    """

    __slots__ = (
        "fn",
        "slots",
        "key_slots",
        "key_getter",
        "generator_count",
        "source",
    )

    def __init__(
        self,
        fn,
        slots: tuple[Var, ...],
        key_slots: tuple[int, ...],
        generator_count: int,
        source: str,
    ) -> None:
        self.fn = fn
        self.slots = slots
        self.key_slots = key_slots
        if len(key_slots) == 1:
            slot = key_slots[0]
            self.key_getter = lambda row: (row[slot],)
        elif key_slots:
            self.key_getter = itemgetter(*key_slots)
        else:  # a fully-ground body: at most one row, keyed trivially
            self.key_getter = lambda row: ()
        self.generator_count = generator_count
        self.source = source

    def rows(self, base: "ObjectBase", seed_rows: list[Row]) -> list[Row]:
        """Run the compiled steps over ``seed_rows`` (no deduplication —
        seeded callers dedup across seed positions themselves)."""
        return self.fn(base, seed_rows)

    def bindings(self, base: "ObjectBase") -> list[Binding]:
        """Complete matches as fresh dicts — the compiled equivalent of
        ``grounding._match_planned`` (dedup only with > 1 generator)."""
        rows = self.fn(base, [()])
        slots = self.slots
        if self.generator_count <= 1:
            return [dict(zip(slots, row)) for row in rows]
        seen: set[tuple] = set()
        out: list[Binding] = []
        key_getter = self.key_getter
        for row in rows:
            key = key_getter(row)
            if key not in seen:
                seen.add(key)
                out.append(dict(zip(slots, row)))
        return out


def _compile_body_plan(
    plan: JoinPlan, seed_vars: tuple[Var, ...], name: str
) -> CompiledBody:
    """Generate and exec the specialized function for ``plan``.

    ``seed_vars`` (sorted by :func:`var_sort_key`) occupy the leading row
    slots; the remaining slots are assigned in plan binding order.
    """
    em = _Emitter(name)
    em.namespace["Oid"] = Oid
    slot_of: dict[Var, int] = {var: i for i, var in enumerate(seed_vars)}
    em.emit(0, "def _run(base, rows):")
    em.emit(1, "if not rows:")
    em.emit(2, "return rows")
    em.emit(1, "probe_hm = base.iter_facts_by_host_method")
    em.emit(1, "probe_arg = base.iter_facts_by_arg")
    em.emit(1, "probe_m = base.iter_facts_by_method")
    em.emit(1, "has = base.__contains__")
    for step in plan.steps:
        if step.action == FILTER:
            _emit_filter(em, step, slot_of)
        elif step.action == BINDER:
            _emit_binder(em, step, slot_of)
        elif isinstance(step.literal.atom, VersionAtom):
            _emit_version_generator(em, step, slot_of)
        else:
            _emit_update_generator(em, step, slot_of)
    em.emit(1, "return rows")
    fn, source = em.build("_run")
    slots = tuple(sorted(slot_of, key=slot_of.__getitem__))
    key_slots = tuple(slot_of[var] for var in plan.key_vars)
    _STATS["bodies_compiled"] += 1
    return CompiledBody(fn, slots, key_slots, plan.generator_count, source)


def _compile_seed_matcher(
    atom: VersionAtom, seed_vars: tuple[Var, ...], name: str
):
    """Compile the bulk seed matcher: delta facts in, slot rows out.

    The interpreted path matches each delta fact against the seed literal
    one ``match_term`` + ``_match_application`` at a time; this generates
    one loop that destructures, checks and projects every fact into a row
    laid out in ``seed_vars`` order (the seed plan's leading slots).
    """
    em = _Emitter(name)
    em.namespace["Oid"] = Oid
    em.emit(0, "def _seed(facts):")
    em.emit(1, "out = []")
    em.emit(1, "app = out.append")
    em.emit(1, "for _f in facts:")
    new_locals, row_dependent = _emit_fact_checks(
        em, atom, {}, indent=2, skip_col=None, check_host=True
    )
    assert not row_dependent  # no row exists yet
    assert set(new_locals) == set(seed_vars)
    projection = _tuple_src([new_locals[var] for var in seed_vars])
    em.emit(2, f"app({projection})")
    em.emit(1, "return out")
    fn, _source = em.build("_seed")
    _STATS["seed_matchers_compiled"] += 1
    return fn


class CompiledRule:
    """Everything compiled for one rule: the full-body executor plus one
    (lazily built) bulk seed matcher + seeded executor per seed literal."""

    __slots__ = ("rule", "plans", "full", "_seeded")

    def __init__(self, rule: "UpdateRule") -> None:
        self.rule = rule
        self.plans = rule_plan(rule)
        full_plan = self.plans.full_plan
        self.full = (
            _compile_body_plan(full_plan, (), rule.name)
            if full_plan is not None
            else None
        )
        self._seeded: dict[int, tuple | None] = {}

    def seeded(self, position: int):
        """``(seed_matcher, compiled_body)`` for the seed literal at
        ``position``, or ``None`` when the seeded plan could not be
        compiled (caller falls back to the interpreted seeded matcher)."""
        try:
            return self._seeded[position]
        except KeyError:
            plan = self.plans.seed_plan(position)
            if plan is None:
                entry = None
            else:
                literal = self.rule.body[position]
                seed_vars = tuple(
                    sorted(literal.variables, key=var_sort_key)
                )
                name = f"{self.rule.name}/seed{position}"
                matcher = _compile_seed_matcher(
                    literal.atom, seed_vars, name
                )
                body = _compile_body_plan(plan, seed_vars, name)
                entry = (matcher, body)
            self._seeded[position] = entry
            return entry


# ----------------------------------------------------------------------
# cached entry points
# ----------------------------------------------------------------------


@lru_cache(maxsize=4096)
def compiled_rule(rule: "UpdateRule") -> CompiledRule:
    return CompiledRule(rule)


@lru_cache(maxsize=4096)
def compiled_body(body: tuple[Literal, ...]) -> CompiledBody | None:
    """The compiled executor for a bare body (prepared queries), sharing
    the plan cache with ``match_body``; ``None`` for unplannable bodies."""
    plan = _body_plan(body)
    if plan is None:
        return None
    return _compile_body_plan(plan, (), "<body>")


register_lru_cache("codegen.rule", compiled_rule)
register_lru_cache("codegen.body", compiled_body)
register_cache("codegen.backend", lambda: dict(_STATS))


def match_rule_compiled(
    rule: "UpdateRule", base: "ObjectBase"
) -> list[Binding] | None:
    """Compiled equivalent of :func:`repro.core.grounding.match_rule`;
    ``None`` when the rule's body has no plan (dynamic fallback)."""
    compiled = compiled_rule(rule)
    if compiled.full is None:
        return None
    return compiled.full.bindings(base)


def match_rule_seeded_compiled(
    rule: "UpdateRule",
    base: "ObjectBase",
    delta: "Delta",
    positions: tuple[int, ...],
) -> list[Binding] | None:
    """Compiled equivalent of ``match_rule_seeded``: delta facts stream
    through the bulk seed matcher and the compiled seeded body in one batch
    per position, with the same shared dedup across positions.

    Returns ``None`` (caller falls back to the interpreted seeded matcher)
    when any needed seed plan is unavailable.
    """
    compiled = compiled_rule(rule)
    entries = []
    for position in positions:
        entry = compiled.seeded(position)
        if entry is None:
            return None
        entries.append((position, entry))
    signature = compiled.plans.signature
    seen: set[tuple] = set()
    results: list[Binding] = []
    for position, (matcher, body) in entries:
        facts = seed_facts(delta, signature, position)
        if not facts:
            continue
        seed_rows = matcher(facts)
        if not seed_rows:
            continue
        # key_vars is the sorted set of *all* body variables, so the key
        # tuples agree across every seed position of the rule.
        key_getter = body.key_getter
        slots = body.slots
        for row in body.rows(base, seed_rows):
            key = key_getter(row)
            if key not in seen:
                seen.add(key)
                results.append(dict(zip(slots, row)))
    return results
