"""Arithmetic expressions for built-in atoms.

The paper's rules use arithmetic on value OIDs, e.g. ``S' = S * 1.1 + 200``
in the salary-raise rules of Section 2.3.  An expression is a term (variable
or OID) or an arithmetic combination of expressions.  Expressions evaluate to
*numeric OIDs*; applying an operator to a symbolic OID raises
:class:`~repro.core.errors.BuiltinError` (caught and reported by the
evaluator with the offending rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

from repro.core.errors import BuiltinError, TermError
from repro.core.terms import Oid, Term, Var, VersionId
from repro.unify.substitution import resolve

__all__ = ["Expr", "BinOp", "Neg", "expr_variables", "evaluate_expr", "ARITH_OPS"]

#: Arithmetic operators supported in expressions.
ARITH_OPS = ("+", "-", "*", "/")


@dataclass(frozen=True, slots=True)
class BinOp:
    """A binary arithmetic node ``left op right`` with ``op ∈ + - * /``."""

    op: str
    left: "Expr"
    right: "Expr"

    def __post_init__(self) -> None:
        if self.op not in ARITH_OPS:
            raise TermError(f"unknown arithmetic operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class Neg:
    """Unary minus."""

    operand: "Expr"

    def __str__(self) -> str:
        return f"-({self.operand})"


#: An expression: a term (Oid / Var) or an arithmetic combination.
Expr = Union[Oid, Var, BinOp, Neg]


def expr_variables(expr: Expr) -> frozenset[Var]:
    """All variables occurring in ``expr``."""
    if isinstance(expr, Var):
        return frozenset((expr,))
    if isinstance(expr, BinOp):
        return expr_variables(expr.left) | expr_variables(expr.right)
    if isinstance(expr, Neg):
        return expr_variables(expr.operand)
    return frozenset()


def _numeric(value: Oid, context: str) -> int | float:
    if not isinstance(value, Oid) or not value.is_numeric:
        raise BuiltinError(
            f"arithmetic {context} needs a numeric OID, got {value}"
        )
    return value.value  # type: ignore[return-value]


def evaluate_expr(expr: Expr, binding: Mapping[Var, Term]) -> Oid:
    """Evaluate ``expr`` under ``binding`` to an OID.

    Raises :class:`BuiltinError` when a variable is unbound, when an operand
    is non-numeric in an arithmetic context, or on division by zero.  A bare
    bound variable or OID evaluates to itself (it need not be numeric — the
    built-in ``=`` also compares symbolic OIDs).
    """
    if isinstance(expr, Oid):
        return expr
    if isinstance(expr, Var):
        value = resolve(expr, binding)
        if isinstance(value, Oid):
            return value
        if isinstance(value, VersionId):  # pragma: no cover - out of sort
            raise BuiltinError(f"variable {expr} bound to a version identity")
        raise BuiltinError(f"variable {expr} is unbound in a built-in atom")
    if isinstance(expr, Neg):
        inner = _numeric(evaluate_expr(expr.operand, binding), "negation")
        return Oid(-inner)
    if isinstance(expr, BinOp):
        left = _numeric(evaluate_expr(expr.left, binding), f"operand of {expr.op}")
        right = _numeric(evaluate_expr(expr.right, binding), f"operand of {expr.op}")
        if expr.op == "+":
            return Oid(left + right)
        if expr.op == "-":
            return Oid(left - right)
        if expr.op == "*":
            return Oid(left * right)
        if right == 0:
            raise BuiltinError("division by zero in a built-in atom")
        value = left / right
        # Keep integer arithmetic exact: 6 / 2 is the OID 3, not 3.0.
        if isinstance(left, int) and isinstance(right, int) and left % right == 0:
            return Oid(left // right)
        return Oid(value)
    raise TermError(f"not an expression: {expr!r}")  # pragma: no cover
