"""Term model of the update language (Section 2.1 of the paper).

The alphabet of the language consists of

* a set ``O`` of *object identities* (OIDs), modelled by :class:`Oid`.  For
  formal simplicity the paper treats values (numbers, strings) as specific
  OIDs; we follow that convention — ``Oid(250)`` and ``Oid("henry")`` are both
  ordinary OIDs.
* an infinite set of *variables*, modelled by :class:`Var`.  Variables are
  quantified over ``O`` only: during evaluation a variable can be bound to an
  OID but never to a proper version identity (this is what makes the
  salary-raise rule of Section 2.1 apply exactly once per employee).
* the function symbols ``ins``, ``del``, ``mod`` (:class:`UpdateKind`), used
  to build *version-id-terms*, modelled by :class:`VersionId`.

A *ground* version-id-term is called a VID.  The set of all VIDs is
``O_V ⊇ O``; e.g. ``ins(del(mod(phil)))`` is the VID of the version of object
``phil`` after a group of modifies, then a group of deletes, then a group of
inserts have been performed on it (Figure 1 of the paper).
"""

from __future__ import annotations

import enum
import sys
from typing import Iterator, Union

from repro.core.caches import register_cache
from repro.core.errors import TermError

__all__ = [
    "UpdateKind",
    "Term",
    "Oid",
    "Var",
    "VersionVar",
    "VersionId",
    "OidValue",
    "intern_oid",
    "is_ground",
    "is_object_id_term",
    "is_version_id_term",
    "object_of",
    "depth",
    "kind_chain",
    "subterms",
    "is_subterm",
    "is_proper_subterm",
    "wrap",
    "variables_of",
]

#: Python values an OID may carry.  Numbers make arithmetic built-ins work;
#: strings are symbolic object names such as ``phil`` or ``empl``.
OidValue = Union[str, int, float]


class UpdateKind(enum.Enum):
    """The three update types of the paper: ``F = {ins, del, mod}``."""

    INSERT = "ins"
    DELETE = "del"
    MODIFY = "mod"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @classmethod
    def from_name(cls, name: str) -> "UpdateKind":
        """Return the kind named by ``name`` (``"ins"``/``"del"``/``"mod"``)."""
        for kind in cls:
            if kind.value == name:
                return kind
        raise TermError(f"unknown update kind {name!r}; expected ins/del/mod")


class Oid:
    """An object identity — an element of the set ``O``.

    Values are OIDs too (the paper: "we consider values as specific OIDs"),
    so the payload may be a string, an int or a float.  Equality and hashing
    are structural over the payload.

    Terms are immutable by convention and hash-cached at construction: they
    key every index of the object base and every variable binding, so the
    evaluator hashes them orders of magnitude more often than it creates
    them.  Never assign to their attributes.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: OidValue) -> None:
        if isinstance(value, bool) or not isinstance(value, (str, int, float)):
            raise TermError(
                f"an OID must carry a str, int or float, got "
                f"{type(value).__name__}"
            )
        if type(value) is str:
            # Symbolic names recur across facts, rules and queries; CPython
            # compares interned strings by pointer, which speeds up every
            # index probe keyed on this OID.
            value = sys.intern(value)
        self.value = value
        self._hash = hash((value,))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not Oid:
            return NotImplemented
        return self.value == other.value

    @property
    def is_numeric(self) -> bool:
        """True when this OID is a value usable in arithmetic built-ins."""
        return isinstance(self.value, (int, float))

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Oid({self.value!r})"


#: The process-wide OID intern table.  Keys pair the payload with its exact
#: type: ``1``, ``1.0`` and ``True`` hash alike in Python, and ``Oid(1)`` /
#: ``Oid(1.0)`` must stay distinct interned objects.
_OID_INTERN: dict[tuple[type, OidValue], "Oid"] = {}


def intern_oid(value: "OidValue | Oid") -> "Oid":
    """The canonical :class:`Oid` for ``value`` — one object per payload.

    Interned OIDs make the ``self is other`` fast path of :meth:`Oid.__eq__`
    hit on every comparison between interned terms, so index-bucket probes
    and dedup keys compare by identity instead of by payload.  The table is
    process-wide and grows with the active symbol universe (bounded by the
    data); :func:`repro.core.caches.cache_stats` reports its size under
    ``terms.oid_intern``.

    Interning is optional — un-interned ``Oid``\\ s remain fully equal and
    hash-compatible with interned ones — so callers on hot construction
    paths (parsers, workload generators, the serializer) opt in.
    """
    if isinstance(value, Oid):
        key = (type(value.value), value.value)
        return _OID_INTERN.setdefault(key, value)
    canonical = _OID_INTERN.get((type(value), value))
    if canonical is None:
        canonical = Oid(value)
        _OID_INTERN[(type(value), value)] = canonical
    return canonical


register_cache(
    "terms.oid_intern",
    lambda: {"size": len(_OID_INTERN), "maxsize": None},
    _OID_INTERN.clear,
)


class Var:
    """A variable.  By convention names start with an upper-case letter.

    Variables denote *objects*: the domain of quantification is ``O``, never a
    proper VID (Section 2.1, footnote 1 of the paper).  A :class:`Var` and a
    :class:`VersionVar` of the same name are distinct variables (equality is
    exact-class, as it was under the dataclass representation).
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str) -> None:
        if not name:
            raise TermError("a variable needs a non-empty name")
        self.name = name
        self._hash = hash((name,))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented if not isinstance(other, Var) else False
        return self.name == other.name

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Var({self.name!r})"


class VersionVar(Var):
    """A *version variable* — the Section 6 extension, written ``?W``.

    Quantifies over the set ``O_V`` of all VIDs instead of ``O``: it matches
    any *existing* version, of any depth.  Allowed in body host positions
    only; a head containing one is rejected up front (stratification
    condition (a) would force a strict self-loop anyway — the reproduction's
    "done carefully" reading of Section 6; see :mod:`repro.ext.vidvars`).
    """

    __slots__ = ()

    def __str__(self) -> str:
        return f"?{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VersionVar({self.name!r})"


class VersionId:
    """A version-id-term ``kind(base)`` with ``kind ∈ {ins, del, mod}``.

    ``base`` is itself a version-id-term (an :class:`Oid`, a :class:`Var`, or
    another :class:`VersionId`).  Ground instances are VIDs and denote
    versions of objects; ``mod(henry)`` is the version of ``henry`` after a
    group of modify-updates has been performed on it.
    """

    __slots__ = ("kind", "base", "_hash")

    def __init__(self, kind: UpdateKind, base: "Term") -> None:
        if not isinstance(base, (Oid, Var, VersionId)):
            raise TermError(
                f"the base of a version-id-term must be a term, got "
                f"{type(base).__name__}"
            )
        self.kind = kind
        self.base = base
        self._hash = hash((kind, base))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not VersionId:
            return NotImplemented
        return (
            self._hash == other._hash
            and self.kind is other.kind
            and self.base == other.base
        )

    def __str__(self) -> str:
        return f"{self.kind.value}({self.base})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VersionId({self.kind.value}, {self.base!r})"


#: Any term of the language: an object-id-term (Oid / Var) or a
#: version-id-term (VersionId over them).
Term = Union[Oid, Var, VersionId]


def is_ground(term: Term) -> bool:
    """True when ``term`` contains no variable."""
    while isinstance(term, VersionId):
        term = term.base
    return isinstance(term, Oid)


def is_object_id_term(term: Term) -> bool:
    """True for object-id-terms: a variable or an OID (no functors)."""
    return isinstance(term, (Oid, Var))


def is_version_id_term(term: Term) -> bool:
    """True for any term of the language (every object-id-term is also a
    version-id-term; so is every application of ins/del/mod)."""
    return isinstance(term, (Oid, Var, VersionId))


def object_of(term: Term) -> Oid:
    """The object an (eventually ground) version-id-term is a version of.

    ``object_of(ins(del(mod(phil)))) == phil``.  Raises :class:`TermError`
    when the innermost term is a variable.
    """
    while isinstance(term, VersionId):
        term = term.base
    if isinstance(term, Oid):
        return term
    raise TermError(f"term {term} has no ground innermost object identity")


def depth(term: Term) -> int:
    """Number of update functors wrapped around the innermost term.

    ``depth(phil) == 0``, ``depth(ins(mod(phil))) == 2``.
    """
    count = 0
    while isinstance(term, VersionId):
        count += 1
        term = term.base
    return count


def kind_chain(term: Term) -> tuple[str, ...]:
    """The update functors wrapped around the innermost term, outermost
    first: ``kind_chain(ins(mod(phil))) == ("ins", "mod")``.

    This is the *shape* of a version-id-term.  Two ground VIDs built by the
    same sequence of update kinds share a shape regardless of the object;
    the semi-naive evaluator's rule dependency index uses shapes to decide
    whether a changed fact can possibly be read by a rule body (a plain
    variable only ever binds an OID, so a pattern host matches exactly the
    hosts of its own shape).
    """
    kinds: list[str] = []
    while isinstance(term, VersionId):
        kinds.append(term.kind.value)
        term = term.base
    return tuple(kinds)


def subterms(term: Term) -> Iterator[Term]:
    """All subterms of a version-id-term, outermost first.

    The paper's notion of subterm for VIDs: the term itself and every term
    obtained by stripping outer functors, e.g. for ``ins(mod(phil))`` the
    subterms are ``ins(mod(phil))``, ``mod(phil)`` and ``phil``.
    """
    while isinstance(term, VersionId):
        yield term
        term = term.base
    yield term


def is_subterm(inner: Term, outer: Term) -> bool:
    """True when ``inner`` is a subterm of ``outer`` (possibly equal)."""
    return any(candidate == inner for candidate in subterms(outer))


def is_proper_subterm(inner: Term, outer: Term) -> bool:
    """True when ``inner`` is a subterm of ``outer`` and differs from it."""
    return inner != outer and is_subterm(inner, outer)


def wrap(kind: UpdateKind, term: Term) -> VersionId:
    """Build the version-id-term ``kind(term)`` — the VID of the version
    created by performing updates of type ``kind`` on version ``term``."""
    return VersionId(kind, term)


def variables_of(term: Term) -> frozenset[Var]:
    """The set of variables occurring in ``term`` (at most one: the
    innermost position, since functors are unary)."""
    while isinstance(term, VersionId):
        term = term.base
    if isinstance(term, Var):
        return frozenset((term,))
    return frozenset()
