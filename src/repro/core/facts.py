"""Ground version-terms ("facts") — the elements of an object base.

A ground version-term ``v.m@a1,...,ak -> r`` states that applying method
``m`` with arguments ``a1,...,ak`` to version ``v`` yields result ``r``
(Section 2.1).  An *object base* is a set of such facts; the *state* of a
version is the set of its method-applications in the base.

Facts live in sets and hash indexes and are created in very large numbers
during bottom-up evaluation, so a lightweight representation matters.  The
hash is computed once at construction (hashing a fact recurses through its
host's version-id chain, and every set operation would otherwise redo that
walk) and equality compares the cheap discriminating fields first.  Facts
are immutable by convention: never assign to their attributes.
"""

from __future__ import annotations

from sys import intern as _intern

from repro.core.errors import TermError
from repro.core.terms import Oid, Term, is_ground, object_of

__all__ = ["EXISTS", "Fact", "make_fact", "exists_fact", "method_key"]

#: Name of the system method of Section 3: ``o.exists -> o`` survives every
#: delete, so a fully-deleted version still records which object it belongs
#: to.  ``exists`` may never occur in a rule head.
EXISTS = "exists"


class Fact:
    """A ground version-term ``host.method@args -> result``.

    Attributes
    ----------
    host:
        The VID the method is applied to (an :class:`~repro.core.terms.Oid`
        or a ground :class:`~repro.core.terms.VersionId`).
    method:
        The method name.
    args:
        The argument OIDs (empty tuple for 0-ary methods).
    result:
        The result OID.  Only object-id-terms are allowed on argument and
        result positions (footnote 1 of the paper): relationships are stable,
        versions are update-process-local.
    """

    __slots__ = ("host", "method", "args", "result", "_hash")

    def __init__(
        self, host: Term, method: str, args: tuple[Oid, ...], result: Oid
    ) -> None:
        self.host = host
        # Interned method names turn the ``==`` in every index probe and in
        # __eq__ below into a pointer comparison.
        self.method = _intern(method)
        self.args = args
        self.result = result
        self._hash = hash((host, method, args, result))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Fact):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.method == other.method
            and self.result == other.result
            and self.args == other.args
            and self.host == other.host
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Fact({self.host!r}, {self.method!r}, "
            f"{self.args!r}, {self.result!r})"
        )

    def __str__(self) -> str:
        arg_str = f"@{','.join(str(a) for a in self.args)}" if self.args else ""
        return f"{self.host}.{self.method}{arg_str} -> {self.result}"

    @property
    def application(self) -> tuple[str, tuple[Oid, ...], Oid]:
        """The method-application part ``(method, args, result)`` — the
        host-independent payload copied from version to version."""
        return (self.method, self.args, self.result)


def make_fact(host: Term, method: str, args: tuple[Oid, ...], result: Oid) -> Fact:
    """Validated :class:`Fact` constructor.

    Ensures the fact is ground and that argument/result positions carry OIDs
    only.  Use this at API boundaries; internal hot paths build the named
    tuple directly from already-validated parts.
    """
    if not is_ground(host):
        raise TermError(f"fact host must be ground, got {host}")
    if not isinstance(result, Oid):
        raise TermError(
            f"method results must be OIDs (footnote 1), got {result!r}"
        )
    for arg in args:
        if not isinstance(arg, Oid):
            raise TermError(
                f"method arguments must be OIDs (footnote 1), got {arg!r}"
            )
    if not method:
        raise TermError("method name must be non-empty")
    return Fact(host, method, tuple(args), result)


def exists_fact(version: Term) -> Fact:
    """The ``exists`` bookkeeping fact for ``version``.

    For a base object ``o`` this is ``o.exists -> o``; for a derived version
    ``v`` of ``o`` the copied fact reads ``v.exists -> o`` — the result always
    names the underlying object.
    """
    return Fact(version, EXISTS, (), object_of(version))


def method_key(method: str, arity: int) -> tuple[str, int]:
    """Index key grouping facts by method name and argument count."""
    return (method, arity)
