"""Bottom-up evaluation — Section 4 of the paper.

Evaluation proceeds stratum by stratum: within a stratum, ``T_P`` is applied
repeatedly (substituting the recomputed version states, DESIGN.md D1) until
the object base stops changing; the result of the lower strata is the input
of the next.  For programs satisfying conditions (a)-(d) the per-stratum
head set grows monotonically, so this terminates in a fixpoint —
``result(P)``.

By default the fixpoint is **semi-naive**: ``apply_tp`` reports a structured
:class:`~repro.core.objectbase.Delta` of added/removed facts, and from the
second iteration of a stratum onward each rule is classified against that
delta by its precompiled dependency signature (:mod:`repro.core.plans`) —
rules that cannot read anything that changed are skipped, rules whose only
exposure is a positive version-term are re-matched starting from the new
facts, and everything else is re-matched in full.  The per-iteration cost is
thus proportional to the size of the change, not of the base.
``EvaluationOptions(semi_naive=False)`` restores the original behaviour
(recompute ``T¹`` from scratch with the dynamic-ordering matcher each
iteration); the two paths are differentially tested against each other.

The version-linearity check of Section 5 runs incrementally during
evaluation (the paper: "its realization seems to be not expensive"; E7
benchmarks that claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.codegen import codegen_enabled
from repro.core.consequence import apply_tp, tp_step
from repro.core.errors import EvaluationLimitError, ProgramError, VersionDepthError
from repro.core.linearity import LinearityTracker
from repro.core.objectbase import ObjectBase
from repro.core.rules import UpdateProgram
from repro.core.safety import check_program_safety
from repro.core.stratification import Stratification, stratify
from repro.core.terms import VersionVar, depth, variables_of
from repro.core.trace import EvaluationTrace, IterationRecord
from repro.obs import metrics as _obs

__all__ = [
    "CompiledProgram",
    "EvaluationOptions",
    "EvaluationOutcome",
    "compile_program",
    "evaluate",
]


@dataclass(frozen=True)
class EvaluationOptions:
    """Tunable behaviour of the evaluator.

    max_iterations_per_stratum:
        Guard against value-generating recursion (DESIGN.md D7).
    check_linearity:
        Run the Section 5 check incrementally (raises on violation).
    check_safety:
        Reject unsafe rules up front (Section 2.1 requires safe rules).
    create_missing_objects:
        Allow ``ins`` on OIDs unknown to the base to create objects
        (DESIGN.md D3; the strict paper reading is False).
    collect_trace / collect_snapshots:
        Record a :class:`~repro.core.trace.EvaluationTrace`, optionally with
        full object-base snapshots per iteration (Figure 2 reproduction).
    max_version_depth:
        Belt-and-braces termination guard on the functor depth of created
        versions (safe programs bound it by construction; the Section 6
        VID-variable extension and ``create_missing_objects`` loops do not).
    semi_naive:
        Delta-driven fixpoint with precompiled join plans (the default).
        ``False`` selects the naive reference path: every iteration
        re-matches every rule of the stratum against the whole base with
        the dynamic-ordering matcher.  Both paths compute the same
        ``result(P)``, fire the same rule-instance sets and reach the same
        linearity verdicts — only the work per iteration differs.
    compiled:
        Run plan-compiled, set-at-a-time rule bodies
        (:mod:`repro.core.codegen`) where available; bodies without a
        compiled form fall back to the interpreted planned matcher per
        rule.  Defaults to on unless the ``REPRO_NO_CODEGEN`` environment
        escape hatch is set.  Ignored on the naive path
        (``semi_naive=False`` keeps the dynamic reference matcher).
    """

    max_iterations_per_stratum: int = 10_000
    check_linearity: bool = True
    check_safety: bool = True
    create_missing_objects: bool = False
    collect_trace: bool = False
    collect_snapshots: bool = False
    max_version_depth: int | None = None
    semi_naive: bool = True
    compiled: bool = field(default_factory=codegen_enabled)


@dataclass
class EvaluationOutcome:
    """``result(P)`` plus everything the run learned along the way."""

    result_base: ObjectBase
    stratification: Stratification
    trace: EvaluationTrace
    final_versions: dict
    iterations: int

    @property
    def strata_count(self) -> int:
        return len(self.stratification)


@dataclass(frozen=True)
class CompiledProgram:
    """The reusable static artifact of one update-program.

    Everything :func:`evaluate` derives from the program alone — the
    head-variable rejection, the safety check, the stratification, and the
    per-rule join plans / dependency signatures of :mod:`repro.core.plans` —
    is computed once here and reused across every subsequent evaluation of
    the same program, whatever the base.  This is what lets the versioned
    store run long chains of ``store.apply`` at per-update cost proportional
    to the update, not to the program analysis.
    """

    program: UpdateProgram
    stratification: Stratification
    safety_checked: bool
    #: The plan-compiled rule executors (``repro.core.codegen``), pinned
    #: here so a long-lived compiled program never loses its closures to
    #: LRU eviction.  Empty when compiled execution was off at compile time.
    compiled_rules: tuple = ()


def compile_program(
    program: UpdateProgram, options: EvaluationOptions | None = None
) -> CompiledProgram:
    """Run the static pipeline of :func:`evaluate` and package the result.

    Raises the same :class:`~repro.core.errors.ProgramError` family a direct
    ``evaluate`` call would, so an invalid program fails at compile time —
    before any base is touched.
    """
    options = options or EvaluationOptions()
    _reject_version_vars_in_heads(program)
    if options.check_safety:
        check_program_safety(program)
    stratification = stratify(program)
    compiled_rules: tuple = ()
    if options.semi_naive:
        from repro.core.plans import rule_plan

        for rule in program:
            rule_plan(rule)
        if options.compiled and codegen_enabled():
            from repro.core.codegen import compiled_rule

            compiled_rules = tuple(compiled_rule(rule) for rule in program)
    return CompiledProgram(
        program, stratification, options.check_safety, compiled_rules
    )


def evaluate(
    program: UpdateProgram,
    base: ObjectBase,
    options: EvaluationOptions | None = None,
    *,
    compiled: CompiledProgram | None = None,
) -> EvaluationOutcome:
    """Compute ``result(P)`` for ``program`` on (a copy of) ``base``.

    The input base is never mutated.  Raises
    :class:`~repro.core.errors.StratificationError`,
    :class:`~repro.core.errors.SafetyError`,
    :class:`~repro.core.errors.VersionLinearityError` or
    :class:`~repro.core.errors.EvaluationLimitError` as applicable.

    ``compiled`` short-circuits the static pipeline with a previously
    computed :class:`CompiledProgram` (it must stem from this ``program``
    under equivalent options; :meth:`repro.core.engine.UpdateEngine.compile`
    guarantees that).
    """
    options = options or EvaluationOptions()
    if compiled is None:
        compiled = compile_program(program, options)
    stratification = compiled.stratification

    working = base.copy()
    working.ensure_exists()

    tracker = LinearityTracker()
    if options.check_linearity:
        tracker.seed_from(working)

    trace = EvaluationTrace(snapshots=options.collect_snapshots)
    total_iterations = 0

    for stratum_index, stratum in enumerate(stratification):
        record = None
        if options.collect_trace:
            record = trace.open_stratum(
                stratum_index, tuple(rule.name for rule in stratum)
            )
        iteration = 0
        delta = None  # None = first iteration of the stratum: match in full
        while True:
            iteration += 1
            total_iterations += 1
            if iteration > options.max_iterations_per_stratum:
                raise EvaluationLimitError(
                    stratum_index, options.max_iterations_per_stratum
                )
            step = tp_step(
                stratum,
                working,
                create_missing_objects=options.create_missing_objects,
                collect_fired=options.collect_trace,
                delta=delta,
                use_plans=options.semi_naive,
                compiled=options.compiled and codegen_enabled(),
            )
            if options.max_version_depth is not None:
                for version in step.new_versions:
                    if depth(version) > options.max_version_depth:
                        raise VersionDepthError(
                            stratum_index, options.max_version_depth, version
                        )
            fresh = [
                version
                for version in step.new_versions
                if not working.version_exists(version)
                and not working.state_of(version)
            ]
            new_delta = apply_tp(working, step)
            changed = bool(new_delta)
            if _obs.metrics_enabled():
                registry = _obs.registry()
                registry.inc("engine_tp_rounds", 1)
                registry.observe(
                    "engine_delta_size",
                    len(new_delta.added) + len(new_delta.removed),
                )
            if options.semi_naive:
                delta = new_delta
            if options.check_linearity:
                for version in sorted(fresh, key=str):
                    tracker.observe(version)
            if record is not None:
                record.iterations.append(
                    IterationRecord(
                        iteration,
                        tuple(step.fired),
                        tuple(sorted(fresh, key=str)),
                        changed,
                        step.copies,
                        working.copy(lazy_indexes=True)
                        if options.collect_snapshots
                        else None,
                    )
                )
            if not changed:
                break

    finals = tracker.latest if options.check_linearity else {}
    return EvaluationOutcome(working, stratification, trace, finals, total_iterations)


def _reject_version_vars_in_heads(program: UpdateProgram) -> None:
    """Section 6 extension, done carefully: a version variable in a rule
    head would force a strict self-loop under condition (a) (its target
    unifies with every head, including its own), so reject it with a clear
    message instead of a puzzling stratification error."""
    for rule in program:
        for var in variables_of(rule.head.target):
            if isinstance(var, VersionVar):
                raise ProgramError(
                    f"rule {rule.name!r}: version variable {var} cannot "
                    f"occur in a rule head (no stratification satisfying "
                    f"condition (a) could exist); version variables "
                    f"quantify over existing versions in rule bodies only"
                )
