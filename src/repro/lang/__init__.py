"""Concrete syntax for the update language.

The paper writes rules like::

    mod[E].sal -> (S, S') <=  E.isa -> empl ^ E.sal -> S ^ S' = S * 1.1

This package provides a faithful ASCII syntax (see ``docs`` in README):

* rules optionally start with a label ``name:`` and end with ``.``;
* ``<=`` (or ``:-``) separates head and body; ``,`` or ``^`` joins literals;
* ``not`` (or ``~``) negates a literal;
* version-terms support the paper's path shorthand
  ``E.isa -> empl / sal -> S``;
* update-terms are ``ins[V].m -> R``, ``del[V].m -> R``,
  ``mod[V].m -> (R, R')`` and the delete-all form ``del[V].*``;
* method arguments use ``@``: ``V.dist@From,To -> D``;
* comparisons: ``=  !=  <  >  >=`` and ``=<`` (Prolog-style, because ``<=``
  is the implication arrow);
* identifiers starting lower-case (or quoted strings, or numbers) are OIDs,
  identifiers starting upper-case or ``_`` are variables;
* comments run from ``%`` or ``#`` to end of line.

Object-base files are lists of ground version-terms, one per ``.``::

    phil.isa -> empl.   phil.pos -> mgr.   phil.sal -> 4000.
    bob.isa -> empl / sal -> 4200 / boss -> phil.
"""

from repro.lang.errors import ParseError
from repro.lang.lexer import Token, tokenize
from repro.lang.parser import (
    parse_body,
    parse_object_base,
    parse_program,
    parse_rule,
    parse_term,
)
from repro.lang.pretty import (
    format_atom,
    format_literal,
    format_object_base,
    format_program,
    format_rule,
    format_term,
)

__all__ = [
    "ParseError",
    "Token",
    "tokenize",
    "parse_program",
    "parse_rule",
    "parse_body",
    "parse_object_base",
    "parse_term",
    "format_term",
    "format_atom",
    "format_literal",
    "format_rule",
    "format_program",
    "format_object_base",
]
