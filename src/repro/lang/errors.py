"""Parse errors with source positions."""

from __future__ import annotations

from repro.core.errors import ReproError


class ParseError(ReproError):
    """A syntax error in a program, body, or object-base text.

    Carries the 1-based ``line`` and ``column`` of the offending token so
    tools (the CLI, tests) can point at the exact spot.
    """

    def __init__(self, message: str, line: int, column: int):
        self.line = line
        self.column = column
        super().__init__(f"line {line}, column {column}: {message}")
