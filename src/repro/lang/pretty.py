"""Pretty-printer: canonical concrete syntax for every AST node.

``parse(format(x)) == x`` holds for terms, atoms, literals, rules, programs
and (initial) object bases — property-tested in
``tests/lang/test_roundtrip.py``.  Expressions are printed fully
parenthesised, comparison ``<=`` is spelled ``=<`` (see the lexer notes),
and OIDs that do not look like lower-case identifiers are quoted.
"""

from __future__ import annotations

import re

from repro.core.atoms import BuiltinAtom, Literal, UpdateAtom, VersionAtom
from repro.core.errors import TermError
from repro.core.exprs import BinOp, Expr, Neg
from repro.core.facts import EXISTS, Fact
from repro.core.objectbase import ObjectBase
from repro.core.rules import UpdateProgram, UpdateRule
from repro.core.terms import Oid, Term, UpdateKind, Var, VersionId, VersionVar

__all__ = [
    "format_term",
    "format_expr",
    "format_atom",
    "format_literal",
    "format_rule",
    "format_program",
    "format_object_base",
]

_BARE_OID = re.compile(r"^[a-z][A-Za-z0-9_]*$")
_OP_SPELLING = {"<=": "=<"}  # core op -> concrete syntax


def format_term(term: Term) -> str:
    """Canonical text of a term: ``phil``, ``'Phil Smith'``, ``4200``,
    ``E``, ``ins(mod(phil))``."""
    if isinstance(term, VersionId):
        return f"{term.kind.value}({format_term(term.base)})"
    if isinstance(term, VersionVar):
        return f"?{term.name}"
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Oid):
        return _format_oid(term)
    raise TermError(f"not a term: {term!r}")  # pragma: no cover


def _format_oid(oid: Oid) -> str:
    value = oid.value
    if isinstance(value, (int, float)):
        return repr(value)
    if _BARE_OID.match(value):
        return value
    quote = '"' if "'" in value else "'"
    return f"{quote}{value}{quote}"


def format_expr(expr: Expr) -> str:
    """Fully parenthesised expression text."""
    if isinstance(expr, BinOp):
        return f"({format_expr(expr.left)} {expr.op} {format_expr(expr.right)})"
    if isinstance(expr, Neg):
        return f"-({format_expr(expr.operand)})"
    return format_term(expr)


def _format_application(method: str, args, result) -> str:
    arg_text = f"@{','.join(format_term(a) for a in args)}" if args else ""
    return f"{method}{arg_text} -> {format_term(result)}"


def format_atom(atom) -> str:
    """Canonical text of any atom."""
    if isinstance(atom, VersionAtom):
        return (
            f"{format_term(atom.host)}."
            f"{_format_application(atom.method, atom.args, atom.result)}"
        )
    if isinstance(atom, UpdateAtom):
        prefix = f"{atom.kind.value}[{format_term(atom.target)}]"
        if atom.delete_all:
            return f"{prefix}.*"
        if atom.kind is UpdateKind.MODIFY:
            arg_text = (
                f"@{','.join(format_term(a) for a in atom.args)}" if atom.args else ""
            )
            return (
                f"{prefix}.{atom.method}{arg_text} -> "
                f"({format_term(atom.result)}, {format_term(atom.result2)})"
            )
        return f"{prefix}.{_format_application(atom.method, atom.args, atom.result)}"
    if isinstance(atom, BuiltinAtom):
        op = _OP_SPELLING.get(atom.op, atom.op)
        return f"{format_expr(atom.left)} {op} {format_expr(atom.right)}"
    raise TermError(f"not an atom: {atom!r}")  # pragma: no cover


def format_literal(literal: Literal) -> str:
    text = format_atom(literal.atom)
    return text if literal.positive else f"not {text}"


def format_rule(rule: UpdateRule, *, label: bool = True) -> str:
    """One rule on one line (facts) or with an indented body."""
    name = f"{rule.name}: " if label and rule.name else ""
    head = format_atom(rule.head)
    if not rule.body:
        return f"{name}{head}."
    body = ",\n    ".join(format_literal(lit) for lit in rule.body)
    return f"{name}{head} <=\n    {body}."


def format_program(program: UpdateProgram) -> str:
    return "\n\n".join(format_rule(rule) for rule in program)


def format_object_base(base: ObjectBase, *, include_exists: bool = False) -> str:
    """One fact per line, in stable order.

    ``exists`` bookkeeping is omitted by default: :func:`parse_object_base`
    regenerates it for OID hosts.  Dumping a *result* base (whose derived
    versions carry ``exists`` facts that regeneration cannot restore) needs
    ``include_exists=True``.
    """
    lines = []
    for fact in base.sorted_facts():
        if not include_exists and fact.method == EXISTS:
            continue
        lines.append(_format_fact(fact))
    return "\n".join(lines)


def _format_fact(fact: Fact) -> str:
    return (
        f"{format_term(fact.host)}."
        f"{_format_application(fact.method, fact.args, fact.result)}."
    )
