"""Tokenizer for the update language.

Hand-rolled single-pass scanner.  Notable decisions:

* ``->`` is scanned before ``-`` (arrow beats minus);
* ``<=`` is the implication arrow; the less-or-equal comparison is spelled
  ``=<`` (Prolog's solution to the same collision);
* a ``.`` directly followed by a digit continues a number (``1.5``), any
  other ``.`` is a DOT token — so ``E.sal`` and the rule-terminating ``.``
  both work, and ``4500.`` is the number 4500 followed by the terminator;
* comments run from ``%`` or ``#`` to end of line.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.lang.errors import ParseError

__all__ = ["Token", "tokenize", "TOKEN_TYPES"]


class Token(NamedTuple):
    """One lexical token with its 1-based source position."""

    type: str
    value: str
    line: int
    column: int

    def describe(self) -> str:
        if self.type == "EOF":
            return "end of input"
        return f"{self.value!r}"


#: All token types the scanner can emit (documentation / tests).
TOKEN_TYPES = (
    "IDENT",      # identifiers: foo, Foo, _x  (case decides OID vs variable)
    "NUMBER",     # 42, 4.5
    "STRING",     # 'quoted oid' or "quoted oid"
    "ARROW",      # ->
    "IMPLIES",    # <= or :-
    "DOT",        # .
    "COMMA",      # ,
    "HAT",        # ^
    "SLASH",      # /
    "AT",         # @
    "STAR",       # *
    "PLUS",       # +
    "MINUS",      # -
    "LPAREN",     # (
    "RPAREN",     # )
    "LBRACKET",   # [
    "RBRACKET",   # ]
    "TILDE",      # ~
    "COLON",      # :  (rule labels)
    "QMARK",      # ?  (version variables, Section 6 extension)
    "EQ",         # =
    "NE",         # !=
    "LT",         # <
    "GT",         # >
    "LE",         # =<
    "GE",         # >=
    "EOF",
)

_TWO_CHAR = {
    "->": "ARROW",
    "<=": "IMPLIES",
    ":-": "IMPLIES",
    "=<": "LE",
    ">=": "GE",
    "!=": "NE",
}

_ONE_CHAR = {
    ":": "COLON",
    "?": "QMARK",
    ".": "DOT",
    ",": "COMMA",
    "^": "HAT",
    "/": "SLASH",
    "@": "AT",
    "*": "STAR",
    "+": "PLUS",
    "-": "MINUS",
    "(": "LPAREN",
    ")": "RPAREN",
    "[": "LBRACKET",
    "]": "RBRACKET",
    "~": "TILDE",
    "=": "EQ",
    "<": "LT",
    ">": "GT",
}


def tokenize(text: str) -> list[Token]:
    """Scan ``text`` into a token list ending with an EOF token.

    Raises :class:`~repro.lang.errors.ParseError` on an unexpected
    character or an unterminated string.
    """
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(text)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and text[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = text[index]

        if char in " \t\r\n":
            advance(1)
            continue

        if char in "%#":  # comment to end of line
            while index < length and text[index] != "\n":
                advance(1)
            continue

        start_line, start_column = line, column

        pair = text[index : index + 2]
        if pair in _TWO_CHAR:
            tokens.append(Token(_TWO_CHAR[pair], pair, start_line, start_column))
            advance(2)
            continue

        if char.isdigit():
            end = index
            while end < length and text[end].isdigit():
                end += 1
            # A '.' continues the number only when a digit follows —
            # otherwise it is the rule terminator / method selector.
            if end + 1 < length and text[end] == "." and text[end + 1].isdigit():
                end += 1
                while end < length and text[end].isdigit():
                    end += 1
            value = text[index:end]
            tokens.append(Token("NUMBER", value, start_line, start_column))
            advance(end - index)
            continue

        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            value = text[index:end]
            tokens.append(Token("IDENT", value, start_line, start_column))
            advance(end - index)
            continue

        if char in "'\"":
            quote = char
            end = index + 1
            while end < length and text[end] != quote:
                if text[end] == "\n":
                    raise ParseError(
                        "unterminated string (newline inside quotes)",
                        start_line,
                        start_column,
                    )
                end += 1
            if end >= length:
                raise ParseError("unterminated string", start_line, start_column)
            value = text[index + 1 : end]
            tokens.append(Token("STRING", value, start_line, start_column))
            advance(end - index + 1)
            continue

        if char in _ONE_CHAR:
            tokens.append(Token(_ONE_CHAR[char], char, start_line, start_column))
            advance(1)
            continue

        raise ParseError(f"unexpected character {char!r}", start_line, start_column)

    tokens.append(Token("EOF", "", line, column))
    return tokens
