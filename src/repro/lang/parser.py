"""Recursive-descent parser for update programs and object-base files.

See :mod:`repro.lang` for the grammar overview.  The parser builds the AST
of :mod:`repro.core` directly — there is no separate parse tree.  Paper
notations handled here:

* the path shorthand ``E.isa -> empl / sal -> S`` expands into one
  version-atom per step (Section 2.3's ``v.m1->r1/m2->r2/...``);
* the delete-all head ``del[V].*`` (the paper's ``del[v].``);
* rule labels (``rule1: ...``) name rules for stratification reports.
"""

from __future__ import annotations

from repro.core.atoms import BuiltinAtom, Literal, UpdateAtom, VersionAtom
from repro.core.errors import ProgramError, TermError
from repro.core.exprs import BinOp, Expr, Neg
from repro.core.objectbase import ObjectBase
from repro.core.rules import UpdateProgram, UpdateRule
from repro.core.terms import Term, UpdateKind, Var, VersionId, VersionVar, intern_oid
from repro.lang.errors import ParseError
from repro.lang.lexer import Token, tokenize

__all__ = [
    "parse_program",
    "parse_rule",
    "parse_body",
    "parse_object_base",
    "parse_term",
    "parse_derived_rules",
]

_KIND_NAMES = {"ins": UpdateKind.INSERT, "del": UpdateKind.DELETE, "mod": UpdateKind.MODIFY}
_COMPARISONS = {"EQ": "=", "NE": "!=", "LT": "<", "GT": ">", "LE": "=<", "GE": ">="}
#: Token comparison spelling -> core operator spelling.
_COMPARISON_OPS = {"=": "=", "!=": "!=", "<": "<", ">": ">", "=<": "<=", ">=": ">="}


class _Parser:
    """Token-stream cursor with the usual expect/accept helpers."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.position = 0

    # -- cursor ---------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.type != "EOF":
            self.position += 1
        return token

    def accept(self, token_type: str) -> Token | None:
        if self.peek().type == token_type:
            return self.advance()
        return None

    def expect(self, token_type: str, context: str) -> Token:
        token = self.peek()
        if token.type != token_type:
            raise self.error(f"expected {context}, found {token.describe()}")
        return self.advance()

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, token.line, token.column)

    def at_end(self) -> bool:
        return self.peek().type == "EOF"

    # -- terms ------------------------------------------------------------
    def parse_vid_term(self) -> Term:
        """A version-id-term: ``ident``, ``Variable``, ``'quoted oid'``,
        number, ``?VersionVariable``, or ``kind( vid )``."""
        token = self.peek()
        if token.type == "QMARK":
            self.advance()
            name = self.expect("IDENT", "a version-variable name after '?'")
            return VersionVar(name.value)
        if token.type == "IDENT" and token.value in _KIND_NAMES:
            if self.peek(1).type == "LPAREN":
                self.advance()
                self.expect("LPAREN", "'(' after version functor")
                inner = self.parse_vid_term()
                self.expect("RPAREN", "')' closing version functor")
                return VersionId(_KIND_NAMES[token.value], inner)
        return self.parse_object_id_term()

    def parse_object_id_term(self) -> Term:
        """An object-id-term: OID or variable (no functors)."""
        token = self.advance()
        if token.type == "IDENT":
            if token.value[0].isupper() or token.value[0] == "_":
                return Var(token.value)
            # Interned: parsed programs, bases and queries share one Oid
            # object per symbol, so index probes compare by identity.
            return intern_oid(token.value)
        if token.type == "STRING":
            return intern_oid(token.value)
        if token.type == "NUMBER":
            return intern_oid(_number(token.value))
        if token.type == "MINUS" and self.peek().type == "NUMBER":
            number = self.advance()
            return intern_oid(-_number(number.value))
        raise ParseError(
            f"expected a term, found {token.describe()}", token.line, token.column
        )

    # -- expressions -------------------------------------------------------
    def parse_expr(self) -> Expr:
        left = self.parse_expr_term()
        while self.peek().type in ("PLUS", "MINUS"):
            op = self.advance()
            right = self.parse_expr_term()
            left = BinOp("+" if op.type == "PLUS" else "-", left, right)
        return left

    def parse_expr_term(self) -> Expr:
        left = self.parse_expr_factor()
        while self.peek().type in ("STAR", "SLASH"):
            op = self.advance()
            right = self.parse_expr_factor()
            left = BinOp("*" if op.type == "STAR" else "/", left, right)
        return left

    def parse_expr_factor(self) -> Expr:
        token = self.peek()
        if token.type == "LPAREN":
            self.advance()
            inner = self.parse_expr()
            self.expect("RPAREN", "')' closing the expression")
            return inner
        if token.type == "MINUS":
            self.advance()
            return Neg(self.parse_expr_factor())
        if token.type in ("IDENT", "STRING", "NUMBER"):
            term = self.parse_object_id_term()
            return term
        raise self.error(f"expected an expression, found {token.describe()}")

    # -- atoms ---------------------------------------------------------------
    def parse_method_application(self) -> tuple[str, tuple[Term, ...], Term]:
        """``method [@ arg {, arg}] -> result`` for version atoms and
        ins/del update atoms."""
        method, args = self.parse_method_and_args()
        self.expect("ARROW", "'->' before the method result")
        result = self.parse_object_id_term()
        return method, args, result

    def parse_method_and_args(self) -> tuple[str, tuple[Term, ...]]:
        name_token = self.expect("IDENT", "a method name")
        args: list[Term] = []
        if self.accept("AT"):
            args.append(self.parse_object_id_term())
            while self.peek().type == "COMMA" and _looks_like_arg(self.peek(1)):
                self.advance()
                args.append(self.parse_object_id_term())
        return name_token.value, tuple(args)

    def parse_update_atom(self, *, in_head: bool) -> UpdateAtom:
        kind_token = self.expect("IDENT", "ins/del/mod")
        kind = _KIND_NAMES.get(kind_token.value)
        if kind is None:
            raise ParseError(
                f"expected ins/del/mod, found {kind_token.value!r}",
                kind_token.line,
                kind_token.column,
            )
        self.expect("LBRACKET", "'[' after the update kind")
        target = self.parse_vid_term()
        self.expect("RBRACKET", "']' closing the update target")
        self.expect("DOT", "'.' after the update target")

        if self.peek().type == "STAR":
            star = self.advance()
            if kind is not UpdateKind.DELETE:
                raise ParseError(
                    "only del[..] supports the delete-all form '.*'",
                    star.line,
                    star.column,
                )
            if not in_head:
                raise ParseError(
                    "del[..].* may only occur in rule heads",
                    star.line,
                    star.column,
                )
            return UpdateAtom(kind, target, None, (), None, None, delete_all=True)

        method, args = self.parse_method_and_args()
        self.expect("ARROW", "'->' before the update result")
        if kind is UpdateKind.MODIFY:
            self.expect("LPAREN", "'(' starting the (old, new) result pair")
            old = self.parse_object_id_term()
            self.expect("COMMA", "',' between old and new result")
            new = self.parse_object_id_term()
            self.expect("RPAREN", "')' closing the result pair")
            return self._build_atom(kind, target, method, args, old, new)
        result = self.parse_object_id_term()
        return self._build_atom(kind, target, method, args, result, None)

    def _build_atom(self, kind, target, method, args, result, result2) -> UpdateAtom:
        try:
            return UpdateAtom(kind, target, method, args, result, result2)
        except (ProgramError, TermError) as exc:
            raise self.error(str(exc)) from exc

    def parse_version_atoms(self) -> list[VersionAtom]:
        """A version-term with path shorthand: one atom per path step."""
        host = self.parse_vid_term()
        self.expect("DOT", "'.' after the version term")
        atoms = []
        method, args, result = self.parse_method_application()
        atoms.append(self._version_atom(host, method, args, result))
        while self.accept("SLASH"):
            method, args, result = self.parse_method_application()
            atoms.append(self._version_atom(host, method, args, result))
        return atoms

    def _version_atom(self, host, method, args, result) -> VersionAtom:
        try:
            return VersionAtom(host, method, args, result)
        except TermError as exc:
            raise self.error(str(exc)) from exc

    def parse_literals(self) -> list[Literal]:
        """One body literal — or several, when the path shorthand expands."""
        negated = False
        token = self.peek()
        if token.type == "TILDE":
            self.advance()
            negated = True
        elif token.type == "IDENT" and token.value == "not" and _starts_atom(self.peek(1)):
            self.advance()
            negated = True

        atoms = self.parse_atom_group()
        if negated and len(atoms) > 1:
            raise self.error(
                "the path shorthand cannot be negated as a whole; "
                "negate the individual version-terms instead"
            )
        return [Literal(atom, not negated) for atom in atoms]

    def parse_atom_group(self) -> list:
        token = self.peek()
        # update-term?  kind '[' ...
        if (
            token.type == "IDENT"
            and token.value in _KIND_NAMES
            and self.peek(1).type == "LBRACKET"
        ):
            return [self.parse_update_atom(in_head=False)]

        # version-term?  A term followed by '.'
        if _starts_vid(token) and not _starts_comparison_ahead(self, token):
            return self.parse_version_atoms()

        # otherwise: a built-in comparison between expressions
        left = self.parse_expr()
        op_token = self.advance()
        if op_token.type == "IMPLIES":
            raise ParseError(
                "'<=' is the implication arrow; write '=<' for less-or-equal",
                op_token.line,
                op_token.column,
            )
        if op_token.type not in _COMPARISONS:
            raise ParseError(
                f"expected a comparison operator, found {op_token.describe()}",
                op_token.line,
                op_token.column,
            )
        right = self.parse_expr()
        spelled = _COMPARISONS[op_token.type]
        return [BuiltinAtom(_COMPARISON_OPS[spelled], left, right)]

    # -- rules -----------------------------------------------------------------
    def parse_rule(self) -> UpdateRule:
        name = ""
        if self.peek().type == "IDENT" and self.peek(1).type == "COLON":
            name = self.advance().value
            self.advance()  # colon
        head = self.parse_update_atom(in_head=True)
        body = self._parse_rule_body()
        self.expect("DOT", "'.' terminating the rule")
        return UpdateRule(head, tuple(body), name)

    def _parse_rule_body(self) -> list[Literal]:
        body: list[Literal] = []
        if self.accept("IMPLIES"):
            body.extend(self.parse_literals())
            while self.peek().type in ("COMMA", "HAT"):
                self.advance()
                body.extend(self.parse_literals())
        return body

    def parse_derived_rule(self) -> tuple[VersionAtom, tuple[Literal, ...], str]:
        """A derived-method rule: a *version-term* head (Section 6's
        derived objects, implemented in :mod:`repro.ext.derived`)."""
        name = ""
        if self.peek().type == "IDENT" and self.peek(1).type == "COLON":
            name = self.advance().value
            self.advance()
        host = self.parse_vid_term()
        self.expect("DOT", "'.' after the head's version term")
        method, args, result = self.parse_method_application()
        head = self._version_atom(host, method, args, result)
        body = self._parse_rule_body()
        self.expect("DOT", "'.' terminating the rule")
        return head, tuple(body), name

    def parse_program(self, name: str) -> UpdateProgram:
        rules = []
        while not self.at_end():
            rules.append(self.parse_rule())
        return UpdateProgram(rules, name)

    # -- object bases ---------------------------------------------------------
    def parse_fact_clauses(self) -> list[VersionAtom]:
        atoms: list[VersionAtom] = []
        while not self.at_end():
            atoms.extend(self.parse_version_atoms())
            self.expect("DOT", "'.' terminating the fact")
        return atoms


def _number(text: str) -> int | float:
    return float(text) if "." in text else int(text)


def _starts_vid(token: Token) -> bool:
    return token.type in ("IDENT", "STRING", "QMARK", "NUMBER", "MINUS")


def _looks_like_arg(token: Token) -> bool:
    """After ``@a,`` decide whether the next token continues the argument
    list (a term) or starts the next body literal."""
    return token.type in ("IDENT", "STRING", "NUMBER", "MINUS")


def _starts_atom(token: Token) -> bool:
    return token.type in ("IDENT", "STRING", "NUMBER", "LPAREN", "MINUS", "TILDE", "QMARK")


def _starts_comparison_ahead(parser: _Parser, token: Token) -> bool:
    """Disambiguate ``S > 4500`` (comparison) from ``s.sal -> X`` (atom):
    an identifier followed by anything except '.' or '(' (functor) begins
    an expression."""
    if token.type == "QMARK":
        return False  # ?W always hosts a version-term
    if token.type in ("STRING", "NUMBER"):
        # numeric/quoted hosts: "0.sal -> x" is an atom, "0 > S" is not
        return parser.peek(1).type != "DOT"
    if token.type == "MINUS":
        # "-1.sal -> x" is an atom on the OID -1; "-1 < S" is not
        return not (
            parser.peek(1).type == "NUMBER" and parser.peek(2).type == "DOT"
        )
    if token.type != "IDENT":
        return True
    next_type = parser.peek(1).type
    if token.value in _KIND_NAMES and next_type == "LPAREN":
        return False  # mod(E)... is a version term
    return next_type != "DOT"


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------


def parse_program(text: str, name: str = "program") -> UpdateProgram:
    """Parse a whole update-program."""
    return _Parser(text).parse_program(name)


def parse_rule(text: str) -> UpdateRule:
    """Parse exactly one rule (trailing input is an error)."""
    parser = _Parser(text)
    rule = parser.parse_rule()
    if not parser.at_end():
        raise parser.error("unexpected input after the rule")
    return rule


def parse_body(text: str) -> tuple[Literal, ...]:
    """Parse a conjunction of body literals (the query syntax)."""
    parser = _Parser(text)
    literals = list(parser.parse_literals())
    while parser.peek().type in ("COMMA", "HAT"):
        parser.advance()
        literals.extend(parser.parse_literals())
    if not parser.at_end():
        raise parser.error("unexpected input after the query")
    return tuple(literals)


def parse_term(text: str) -> Term:
    """Parse a single (version-id-)term."""
    parser = _Parser(text)
    term = parser.parse_vid_term()
    if not parser.at_end():
        raise parser.error("unexpected input after the term")
    return term


def parse_derived_rules(text: str) -> list[tuple[VersionAtom, tuple[Literal, ...], str]]:
    """Parse derived-method rules (version-term heads), e.g.::

        senior: X.senior -> yes <= X.sal -> S, S > 4000.

    Returns ``(head, body, name)`` triples; :mod:`repro.ext.derived` wraps
    them into a :class:`~repro.ext.derived.DerivedProgram`.
    """
    parser = _Parser(text)
    rules = []
    while not parser.at_end():
        rules.append(parser.parse_derived_rule())
    return rules


def parse_object_base(text: str, *, ensure_exists: bool = True) -> ObjectBase:
    """Parse an object-base file: ground version-terms terminated by '.'.

    ``ensure_exists`` adds the Section 3 ``o.exists -> o`` bookkeeping for
    every host OID (DESIGN.md D3).
    """
    atoms = _Parser(text).parse_fact_clauses()
    base = ObjectBase()
    for atom in atoms:
        if not atom.is_ground():
            raise ParseError(
                f"object bases hold ground facts only: {atom}", 1, 1
            )
        base.add(atom.to_fact())
    if ensure_exists:
        base.ensure_exists()
    return base
