"""Command-line interface: run update-programs against object-base files.

Usage (installed as ``repro-updates``, also ``python -m repro``)::

    repro-updates apply --program update.upd --base world.ob [--trace]
    repro-updates stratify --program update.upd [--conditions abcd]
    repro-updates check --program update.upd
    repro-updates query --base world.ob "E.isa -> empl, E.sal -> S"
    repro-updates query --base world.ob --prepared --repeat 100 "E.sal -> S"
    repro-updates bench [--out BENCH_PR1.json] [--sizes 25 100 400]
    repro-updates bench --store [--out BENCH_PR2.json]
    repro-updates bench --queries [--out BENCH_PR3.json]
    repro-updates store init --dir STORE --base world.ob
    repro-updates store apply --dir STORE --program update.upd [--tag t]
    repro-updates store log --dir STORE
    repro-updates store diff --dir STORE OLDER NEWER
    repro-updates store as-of --dir STORE REVISION [--out new.ob]
    repro-updates store compact --dir STORE [--interval N]
    repro-updates store verify --dir STORE [--json]
    repro-updates serve --dir STORE --socket /tmp/repro.sock
    repro-updates serve --dir STORE --socket S --durability fsync
    repro-updates client --socket /tmp/repro.sock query "E.sal -> S"
    repro-updates client --socket /tmp/repro.sock subscribe "E.sal -> S" --pushes 1
    repro-updates client --socket /tmp/repro.sock tx --program update.upd
    repro-updates bench --serve [--out BENCH_PR4.json] [--clients 8]
    repro-updates bench --joins [--out BENCH_PR7.json]
    repro-updates replica serve --dir R --primary unix:P.sock --socket R.sock
    repro-updates replica promote --socket R.sock [--takeover P.sock]
    repro-updates replicaset --primary unix:P.sock --follower unix:R.sock
    repro-updates bench --replication [--out BENCH_PR8.json]
    repro-updates serve --dir STORE --socket S --metrics
    repro-updates client --socket S metrics [--json]
    repro-updates client --socket S slowlog [--clear]
    repro-updates top --socket S [--interval 2] [--iterations N]
    repro-updates bench --obs [--out BENCH_PR9.json]
    repro-updates cluster init --dir C --base world.ob --shards 4
    repro-updates cluster launch --dir C [--supervise]
    repro-updates cluster status cluster:unix:C/shard-0.sock,unix:C/shard-1.sock
    repro-updates top --target cluster:unix:A,unix:B
    repro-updates bench --cluster [--out BENCH_PR10.json] [--shards 1 2 4 8]

``apply`` prints the new object base (``ob'``) to stdout, or writes it with
``--out``; ``--result-base`` dumps ``result(P)`` with all versions instead.
``store`` commands operate on a durable journal directory (JSONL delta log
plus periodic snapshots) holding a whole revision chain.  ``serve`` exposes
a journal directory over the concurrent JSON-lines protocol (MVCC sessions,
optimistic transactions, push-based live queries); ``client`` talks to it.

The ``store`` and ``client`` command groups run through the unified
connection facade (``repro.connect``) — the CLI is just another caller of
the public API, so journal directories and served sockets behave
identically here and in embedding code.

Every handler exits 0 on success and non-zero with a one-line ``error: …``
on stderr for expected failures (unknown tags/revisions, missing files,
corrupt journals, connection problems) — no tracebacks.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path

from repro.core.engine import UpdateEngine
from repro.core.errors import ReproError
from repro.core.query import query_literals
from repro.core.safety import check_rule_safety
from repro.core.stratification import stratify
from repro.lang.parser import parse_body, parse_object_base, parse_program
from repro.lang.pretty import format_object_base

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-updates",
        description=(
            "Rule-based updates for object bases with version identities "
            "(Kramer/Lausen/Saake, VLDB 1992)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    apply_cmd = commands.add_parser("apply", help="run a program, print ob'")
    apply_cmd.add_argument("--program", required=True, type=Path)
    apply_cmd.add_argument("--base", required=True, type=Path)
    apply_cmd.add_argument(
        "--views",
        type=Path,
        help="derived-method rules (version-term heads) readable by the "
        "program's rule bodies (repro.ext.derived)",
    )
    apply_cmd.add_argument("--out", type=Path, help="write ob' here instead of stdout")
    apply_cmd.add_argument(
        "--trace", action="store_true", help="print the evaluation trace"
    )
    apply_cmd.add_argument(
        "--result-base",
        action="store_true",
        help="print result(P) (all versions) instead of ob'",
    )
    apply_cmd.add_argument(
        "--no-linearity-check",
        action="store_true",
        help="skip the Section 5 run-time check (a posteriori check still "
        "runs when building ob')",
    )

    stratify_cmd = commands.add_parser(
        "stratify", help="print the stratification and its justification"
    )
    stratify_cmd.add_argument("--program", required=True, type=Path)
    stratify_cmd.add_argument(
        "--conditions",
        default="abcd",
        help="subset of 'abcd' to apply (default: all, as in Section 4)",
    )

    check_cmd = commands.add_parser(
        "check", help="report safety and stratifiability per rule"
    )
    check_cmd.add_argument("--program", required=True, type=Path)
    check_cmd.add_argument(
        "--lint",
        action="store_true",
        help="also run the static diagnostics (repro.analysis.lint)",
    )

    query_cmd = commands.add_parser("query", help="answer a conjunctive query")
    query_cmd.add_argument("--base", required=True, type=Path)
    query_cmd.add_argument("body", help="query text, e.g. 'E.isa -> empl'")
    query_cmd.add_argument(
        "--prepared",
        action="store_true",
        help="compile the query once (join plan + secondary-index column "
        "selection) and execute via the prepared path",
    )
    query_cmd.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="execute the query N times and report serving timings on "
        "stderr (answers are printed once)",
    )

    from repro.bench.sweep import (
        DEFAULT_READS_PER_UPDATE,
        DEFAULT_REPEATS,
        DEFAULT_SERVE_CLIENTS,
        DEFAULT_SIZES,
        DEFAULT_STORE_REVISIONS,
    )

    bench_cmd = commands.add_parser(
        "bench",
        help="run the P1 scaling sweep (semi-naive vs naive), the P2 "
        "versioned-store sweep (--store), the P3 read-heavy "
        "prepared-query sweep (--queries), the P4 concurrent "
        "serving sweep (--serve), or the P7 compiled-join sweep "
        "(--joins), and write JSON",
    )
    bench_cmd.add_argument("--out", type=Path, default=None)
    bench_cmd.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    bench_cmd.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    bench_cmd.add_argument("--store", action="store_true")
    bench_cmd.add_argument(
        "--revisions", type=int, default=DEFAULT_STORE_REVISIONS
    )
    bench_cmd.add_argument("--queries", action="store_true")
    bench_cmd.add_argument(
        "--updates", type=int, default=None,
        help="update transactions for the --queries / --serve sweeps "
        "(each has its own default)",
    )
    bench_cmd.add_argument(
        "--reads", type=int, default=DEFAULT_READS_PER_UPDATE
    )
    bench_cmd.add_argument(
        "--serve", action="store_true",
        help="run the concurrent served-subscription sweep (multi-client "
        "throughput vs naive per-request re-evaluation)",
    )
    bench_cmd.add_argument(
        "--clients", type=int, default=DEFAULT_SERVE_CLIENTS
    )
    bench_cmd.add_argument(
        "--soak", action="store_true",
        help="run the fault-tolerance soak (mixed churn with reconnecting "
        "subscribers through a kill, offline compaction and restart)",
    )
    bench_cmd.add_argument(
        "--duration", type=float, default=None,
        help="soak: churn for this many seconds (default: 60)",
    )
    bench_cmd.add_argument(
        "--subscribers", type=int, default=None,
        help="soak: reconnecting subscriber connections (default: 4)",
    )
    bench_cmd.add_argument(
        "--joins", action="store_true",
        help="run the compiled-vs-interpreted-vs-naive join-execution "
        "sweep (P1 sizes plus a wide-join synthetic)",
    )
    bench_cmd.add_argument(
        "--wide-nodes", type=int, default=None,
        help="joins sweep: x-nodes in the wide-join synthetic base",
    )
    bench_cmd.add_argument(
        "--replication", action="store_true",
        help="run the replicated-serving sweep (follower catch-up, read "
        "fanout across replicas, failover time, zero-loss check)",
    )
    bench_cmd.add_argument(
        "--followers", type=int, default=None,
        help="replication sweep: read replicas to attach (default: 3)",
    )
    bench_cmd.add_argument(
        "--cluster", action="store_true",
        help="run the sharded-cluster sweep (single-shard commit overhead "
        "vs a standalone server, scatter-read scaling across shard "
        "counts)",
    )
    bench_cmd.add_argument(
        "--shards", type=int, nargs="+", default=None,
        help="cluster sweep: shard counts to sweep (default: 1 2 4 8)",
    )
    bench_cmd.add_argument(
        "--obs", action="store_true",
        help="run the observability-overhead sweep (P1[400] apply and a "
        "scaled serve run, metrics registry on vs off)",
    )
    bench_cmd.add_argument(
        "--trajectory", action="store_true",
        help="only rebuild BENCH_TRAJECTORY.json from the committed "
        "BENCH_PR*.json documents (no sweep)",
    )

    store_cmd = commands.add_parser(
        "store", help="manage a durable versioned-store journal directory"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)

    def _dir_arg(sub):
        sub.add_argument(
            "--dir", required=True, type=Path, dest="directory",
            help="journal directory",
        )

    init_cmd = store_sub.add_parser(
        "init", help="create a journal from an object-base file"
    )
    _dir_arg(init_cmd)
    init_cmd.add_argument("--base", required=True, type=Path)
    init_cmd.add_argument("--tag", default="initial")
    init_cmd.add_argument(
        "--snapshot-interval", type=int, default=None,
        help="materialize a full snapshot every N revisions",
    )
    init_cmd.add_argument(
        "--full-copy", action="store_true",
        help="store a full snapshot at every revision (no delta chain)",
    )

    store_apply_cmd = store_sub.add_parser(
        "apply", help="run a program against the head, append one revision"
    )
    _dir_arg(store_apply_cmd)
    store_apply_cmd.add_argument("--program", required=True, type=Path)
    store_apply_cmd.add_argument("--tag", default="")

    log_cmd = store_sub.add_parser("log", help="list the revision chain")
    _dir_arg(log_cmd)

    diff_cmd = store_sub.add_parser(
        "diff", help="added/removed facts between two revisions"
    )
    _dir_arg(diff_cmd)
    diff_cmd.add_argument("older", help="revision tag or index")
    diff_cmd.add_argument("newer", help="revision tag or index")
    diff_cmd.add_argument("--include-exists", action="store_true")

    asof_cmd = store_sub.add_parser(
        "as-of", help="print the base as of a revision"
    )
    _dir_arg(asof_cmd)
    asof_cmd.add_argument("revision", help="revision tag or index")
    asof_cmd.add_argument("--out", type=Path, help="write here instead of stdout")

    compact_cmd = store_sub.add_parser(
        "compact", help="rewrite the journal under a fresh snapshot interval"
    )
    _dir_arg(compact_cmd)
    compact_cmd.add_argument("--interval", type=int, default=None)

    verify_cmd = store_sub.add_parser(
        "verify",
        help="audit the journal without replaying it: per-line checksums, "
        "chain order, snapshot presence; non-zero exit on any damage",
    )
    _dir_arg(verify_cmd)
    verify_cmd.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )

    serve_cmd = commands.add_parser(
        "serve",
        help="serve a journal directory over the concurrent JSON-lines "
        "protocol (MVCC sessions, optimistic transactions, live queries)",
    )
    _dir_arg(serve_cmd)
    serve_cmd.add_argument(
        "--socket", type=Path, default=None,
        help="listen on a unix socket at this path",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=None,
        help="listen on TCP (0 picks a free port, printed on stderr)",
    )
    serve_cmd.add_argument(
        "--durability", choices=["none", "flush", "fsync"], default=None,
        help="journal write discipline for served commits (default: flush; "
        "fsync survives power loss, none is fastest)",
    )
    serve_cmd.add_argument(
        "--shutdown-deadline", type=float, default=None, metavar="SECONDS",
        help="on SIGTERM/SIGINT, stop accepting, finish in-flight work and "
        "flush outboxes for at most this long before cutting connections",
    )
    serve_cmd.add_argument(
        "--metrics", action="store_true",
        help="enable the observability registry for this process (same as "
        "REPRO_OBS=1): commit-phase/per-rule/wire histograms, readable via "
        "`repro client metrics` and `repro top`",
    )
    serve_cmd.add_argument(
        "--shard-id", type=int, default=None, metavar="I",
        help="declare this server shard I of a hash-partitioned cluster "
        "(routers verify the declared identity at connect time)",
    )
    serve_cmd.add_argument(
        "--shard-count", type=int, default=None, metavar="N",
        help="declare the cluster's shard count (with --shard-id)",
    )

    cluster_cmd = commands.add_parser(
        "cluster",
        help="manage a hash-partitioned shard cluster "
        "(init/launch/status; connect with cluster:a,b,...)",
    )
    cluster_sub = cluster_cmd.add_subparsers(
        dest="cluster_command", required=True
    )
    cluster_init = cluster_sub.add_parser(
        "init",
        help="partition an object-base file into N per-shard journal "
        "directories plus a cluster.json manifest",
    )
    cluster_init.add_argument(
        "--dir", required=True, type=Path, dest="directory",
        help="cluster directory (shard journals land under shard-<i>/)",
    )
    cluster_init.add_argument("--base", required=True, type=Path)
    cluster_init.add_argument(
        "--shards", required=True, type=int, metavar="N",
    )
    cluster_init.add_argument("--tag", default="initial")
    cluster_launch = cluster_sub.add_parser(
        "launch",
        help="start one `repro serve` process per shard of an initialized "
        "cluster directory; prints the cluster: connect target",
    )
    cluster_launch.add_argument(
        "--dir", required=True, type=Path, dest="directory",
    )
    cluster_launch.add_argument(
        "--supervise", action="store_true",
        help="restart a shard server that exits (until this process is "
        "stopped)",
    )
    cluster_launch.add_argument(
        "--metrics", action="store_true",
        help="launch every shard with the metrics registry enabled",
    )
    cluster_launch.add_argument(
        "--durability", choices=["none", "flush", "fsync"], default=None,
    )
    cluster_status = cluster_sub.add_parser(
        "status",
        help="ping every shard of a cluster: target and print the "
        "per-shard status table",
    )
    cluster_status.add_argument(
        "target", help="a cluster: target, e.g. cluster:unix:a,unix:b"
    )
    cluster_status.add_argument(
        "--json", action="store_true",
        help="print the composed stats document as JSON instead",
    )

    replica_cmd = commands.add_parser(
        "replica",
        help="run or control a journal-streaming read replica",
    )
    replica_sub = replica_cmd.add_subparsers(
        dest="replica_command", required=True
    )
    replica_serve = replica_sub.add_parser(
        "serve",
        help="bootstrap from a primary, tail its journal and serve reads "
        "(promotes on `repro replica promote` or --auto-promote)",
    )
    _dir_arg(replica_serve)
    replica_serve.add_argument(
        "--primary", required=True,
        help="the primary's endpoint (unix:PATH, tcp:HOST:PORT, serve:...)",
    )
    replica_serve.add_argument(
        "--socket", type=Path, default=None,
        help="serve this replica on a unix socket at this path",
    )
    replica_serve.add_argument("--host", default="127.0.0.1")
    replica_serve.add_argument(
        "--port", type=int, default=None,
        help="serve this replica on TCP (0 picks a free port)",
    )
    replica_serve.add_argument(
        "--durability", choices=["none", "flush", "fsync"], default=None,
        help="journal write discipline for replicated lines",
    )
    replica_serve.add_argument(
        "--heartbeat-interval", type=float, default=1.0, metavar="SECONDS",
    )
    replica_serve.add_argument(
        "--heartbeat-misses", type=int, default=3, metavar="N",
        help="consecutive failed pings before the primary is declared dead",
    )
    replica_serve.add_argument(
        "--auto-promote", action="store_true",
        help="promote this replica itself when the primary is declared dead",
    )
    replica_serve.add_argument(
        "--takeover", type=Path, default=None, metavar="SOCKET",
        help="after promotion, additionally bind the old primary's unix "
        "socket so reconnecting clients land here",
    )
    replica_serve.add_argument(
        "--metrics", action="store_true",
        help="enable the observability registry for this replica process "
        "(same as REPRO_OBS=1)",
    )
    replica_promote = replica_sub.add_parser(
        "promote",
        help="tell a running replica to stop replicating and become the "
        "writable primary (fences the old one)",
    )
    replica_promote.add_argument("--socket", type=Path, default=None)
    replica_promote.add_argument("--host", default="127.0.0.1")
    replica_promote.add_argument("--port", type=int, default=None)
    replica_promote.add_argument(
        "--epoch", type=int, default=None,
        help="promote at this fencing epoch (default: past everything seen)",
    )
    replica_promote.add_argument(
        "--takeover", type=Path, default=None, metavar="SOCKET",
        help="ask the replica to also bind this (dead primary's) socket",
    )

    replicaset_cmd = commands.add_parser(
        "replicaset",
        help="supervise a primary and its replicas: health-check pings, "
        "auto-promote the freshest follower on failure, fence zombies",
    )
    replicaset_cmd.add_argument("--primary", required=True)
    replicaset_cmd.add_argument(
        "--follower", action="append", required=True, metavar="TARGET",
        dest="followers", help="a follower endpoint (repeatable)",
    )
    replicaset_cmd.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
    )
    replicaset_cmd.add_argument(
        "--misses", type=int, default=3,
        help="consecutive failed pings before promoting",
    )
    replicaset_cmd.add_argument(
        "--no-auto-promote", action="store_true",
        help="observe and report only; never promote",
    )
    replicaset_cmd.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="stop after this long (default: run forever)",
    )

    client_cmd = commands.add_parser(
        "client", help="talk to a running `repro serve` instance"
    )
    client_cmd.add_argument("--socket", type=Path, default=None)
    client_cmd.add_argument("--host", default="127.0.0.1")
    client_cmd.add_argument("--port", type=int, default=None)
    client_cmd.add_argument(
        "--target", default=None, metavar="TARGET",
        help="connect to any target spec (serve:/tcp:/replset:/cluster:) "
        "instead of --socket/--port",
    )
    client_cmd.add_argument(
        "--retry", type=int, default=None, metavar="ATTEMPTS",
        help="reconnect across restarts and failovers, redialling up to "
        "this many times (live subscriptions resync with a lagged delta)",
    )
    client_sub = client_cmd.add_subparsers(dest="client_command", required=True)

    client_sub.add_parser("ping", help="liveness probe")
    client_query = client_sub.add_parser(
        "query", help="answer a conjunctive query at the server's head"
    )
    client_query.add_argument("body")
    client_apply = client_sub.add_parser(
        "apply", help="autocommit an update program on the server"
    )
    client_apply.add_argument("--program", required=True, type=Path)
    client_apply.add_argument("--tag", default="")
    client_subscribe = client_sub.add_parser(
        "subscribe",
        help="live query: print the initial answers, then answer diffs as "
        "JSON lines as commits arrive",
    )
    client_subscribe.add_argument("body")
    client_subscribe.add_argument(
        "--pushes", type=int, default=1,
        help="exit after this many answer diffs (default: %(default)s)",
    )
    client_subscribe.add_argument(
        "--timeout", type=float, default=30.0,
        help="give up waiting after this many seconds",
    )
    client_tx = client_sub.add_parser(
        "tx",
        help="run one optimistic transaction: begin, stage a program "
        "(validating any --read bodies), commit with retry on conflict",
    )
    client_tx.add_argument("--program", required=True, type=Path)
    client_tx.add_argument("--tag", default="")
    client_tx.add_argument(
        "--read", action="append", default=[], metavar="BODY",
        help="query to run at the pinned revision before staging "
        "(repeatable; joins the conflict footprint)",
    )
    client_tx.add_argument(
        "--retries", type=int, default=5,
        help="attempts before giving up on repeated conflicts",
    )
    client_sub.add_parser("log", help="print the server's revision chain")
    client_asof = client_sub.add_parser(
        "as-of", help="print the base as of a revision on the server"
    )
    client_asof.add_argument("revision")
    client_sub.add_parser("stats", help="print server counters as JSON")
    client_metrics = client_sub.add_parser(
        "metrics",
        help="print the server's metrics registry as Prometheus text "
        "(empty unless the server runs with --metrics / REPRO_OBS=1)",
    )
    client_metrics.add_argument(
        "--json", action="store_true",
        help="print the raw registry snapshot as JSON instead",
    )
    client_slowlog = client_sub.add_parser(
        "slowlog",
        help="print the server's slow-operation ring buffer as JSON",
    )
    client_slowlog.add_argument(
        "--clear", action="store_true",
        help="also reset the ring buffer after reading it",
    )
    client_script = client_sub.add_parser(
        "script",
        help="send raw JSONL requests from a file ('-' = stdin); print "
        "every response and push as JSON lines",
    )
    client_script.add_argument("file")

    top_cmd = commands.add_parser(
        "top",
        help="live text dashboard over a running server's stats/metrics "
        "(refreshes in place; Ctrl-C to exit)",
    )
    top_cmd.add_argument("--socket", type=Path, default=None)
    top_cmd.add_argument("--host", default="127.0.0.1")
    top_cmd.add_argument("--port", type=int, default=None)
    top_cmd.add_argument(
        "--target", default=None,
        help="any repro.connect target instead of --socket/--port — a "
        "cluster: target renders the aggregated multi-shard dashboard",
    )
    top_cmd.add_argument(
        "--dir", type=Path, default=None, dest="directory",
        help="render one snapshot from a local journal directory instead "
        "of a server",
    )
    top_cmd.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh period (default: %(default)s)",
    )
    top_cmd.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="exit after N refreshes (default: run until Ctrl-C)",
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    import json

    arguments = build_parser().parse_args(argv)
    try:
        handler = _HANDLERS[arguments.command]
        return handler(arguments)
    except ReproError as error:
        # Covers the whole library family, including the serving-layer
        # errors (ConflictError and friends derive from ReproError).
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        name = error.filename if error.filename is not None else error
        print(f"error: no such file: {name}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as error:
        print(f"error: malformed JSON input: {error}", file=sys.stderr)
        return 1
    except (ConnectionError, asyncio.TimeoutError) as error:
        detail = str(error) or error.__class__.__name__
        print(f"error: server connection failed: {detail}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


def _cmd_apply(arguments) -> int:
    program = parse_program(arguments.program.read_text(encoding="utf-8"))
    base = parse_object_base(arguments.base.read_text(encoding="utf-8"))
    if arguments.views:
        from repro.ext.derived import DerivedUpdateEngine, parse_derived_program

        views = parse_derived_program(
            arguments.views.read_text(encoding="utf-8")
        )
        engine = DerivedUpdateEngine(
            views, check_linearity=not arguments.no_linearity_check
        )
    else:
        engine = UpdateEngine(
            collect_trace=arguments.trace,
            check_linearity=not arguments.no_linearity_check,
        )
    result = engine.apply(program, base)
    if arguments.trace:
        print(result.trace.render(), file=sys.stderr)
        print(file=sys.stderr)
    chosen = result.result_base if arguments.result_base else result.new_base
    text = format_object_base(chosen, include_exists=arguments.result_base)
    if arguments.out:
        arguments.out.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {arguments.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_stratify(arguments) -> int:
    program = parse_program(arguments.program.read_text(encoding="utf-8"))
    stratification = stratify(program, conditions=arguments.conditions)
    print(stratification.explain())
    return 0


def _cmd_check(arguments) -> int:
    program = parse_program(arguments.program.read_text(encoding="utf-8"))
    failures = 0
    for rule in program:
        try:
            check_rule_safety(rule)
            print(f"{rule.name}: safe")
        except ReproError as error:
            failures += 1
            print(f"{rule.name}: UNSAFE — {error}")
    try:
        stratification = stratify(program)
        print(f"stratification: {stratification.names()}")
    except ReproError as error:
        failures += 1
        print(f"stratification: FAILED — {error}")
    if arguments.lint:
        from repro.analysis import lint_program

        findings = lint_program(program)
        if findings:
            for finding in findings:
                print(finding)
        else:
            print("lint: clean")
    return 1 if failures else 0


def _cmd_query(arguments) -> int:
    import time

    base = parse_object_base(arguments.base.read_text(encoding="utf-8"))
    repeat = max(1, arguments.repeat)
    if arguments.prepared:
        from repro.core.query import prepare_query

        prepared = prepare_query(arguments.body)
        times = []
        for _ in range(repeat):
            start = time.perf_counter()
            answers = prepared.run(base)
            times.append(time.perf_counter() - start)
    else:
        literals = parse_body(arguments.body)
        times = []
        for _ in range(repeat):
            start = time.perf_counter()
            answers = query_literals(base, literals)
            times.append(time.perf_counter() - start)
    if repeat > 1:
        mode = "prepared" if arguments.prepared else "per-call"
        print(
            f"{mode}: {repeat} runs, best {min(times) * 1e3:.3f} ms, "
            f"mean {sum(times) / len(times) * 1e3:.3f} ms",
            file=sys.stderr,
        )
    if not answers:
        print("(no answers)")
        return 0
    for answer in answers:
        if answer:
            print(", ".join(f"{k} = {v}" for k, v in sorted(answer.items())))
        else:
            print("yes")
    return 0


def _cmd_bench(arguments) -> int:
    from repro.bench.sweep import main as bench_main

    argv = ["--repeats", str(arguments.repeats)]
    if arguments.out is not None:
        argv += ["--out", str(arguments.out)]
    argv += ["--sizes", *(str(s) for s in arguments.sizes)]
    if arguments.store:
        argv += ["--store", "--revisions", str(arguments.revisions)]
    if arguments.queries:
        argv += ["--queries", "--reads", str(arguments.reads)]
    if arguments.serve:
        argv += ["--serve", "--clients", str(arguments.clients)]
    if arguments.joins:
        argv += ["--joins"]
        if arguments.wide_nodes is not None:
            argv += ["--wide-nodes", str(arguments.wide_nodes)]
    if arguments.soak:
        argv += ["--soak"]
        if arguments.duration is not None:
            argv += ["--duration", str(arguments.duration)]
        if arguments.subscribers is not None:
            argv += ["--subscribers", str(arguments.subscribers)]
    if arguments.replication:
        argv += ["--replication"]
        if arguments.followers is not None:
            argv += ["--followers", str(arguments.followers)]
        if arguments.duration is not None:
            argv += ["--duration", str(arguments.duration)]
    if arguments.cluster:
        argv += ["--cluster"]
        if arguments.shards is not None:
            argv += ["--shards", *(str(s) for s in arguments.shards)]
        if arguments.duration is not None:
            argv += ["--duration", str(arguments.duration)]
    if arguments.obs:
        argv += ["--obs"]
    if arguments.updates is not None:
        argv += ["--updates", str(arguments.updates)]
    if arguments.trajectory:
        argv += ["--trajectory"]
    return bench_main(argv)


def _cmd_serve(arguments) -> int:
    import signal

    from repro.server import ReproServer, StoreService
    from repro.storage import DurabilityOptions

    if arguments.socket is None and arguments.port is None:
        raise ReproError("serve needs --socket PATH or --port N")
    durability = (
        DurabilityOptions(mode=arguments.durability)
        if arguments.durability is not None
        else None
    )
    if arguments.metrics:
        from repro.obs import enable_metrics

        enable_metrics(True)
    if (arguments.shard_id is None) != (arguments.shard_count is None):
        raise ReproError("--shard-id and --shard-count go together")
    service = StoreService.open(
        arguments.directory, durability=durability,
        shard_id=arguments.shard_id, shard_count=arguments.shard_count,
    )

    async def run() -> None:
        server = ReproServer(
            service,
            path=str(arguments.socket) if arguments.socket else None,
            host=arguments.host,
            port=arguments.port if arguments.port is not None else 0,
        )
        await server.start()
        print(
            f"serving {arguments.directory} at {server.address} "
            f"({len(service.store)} revisions, head "
            f"[{service.store.head.tag}])",
            file=sys.stderr,
            flush=True,
        )
        # SIGTERM/SIGINT drain gracefully: stop accepting, let in-flight
        # commands finish, flush outboxes (bounded by the deadline), then
        # close sockets with the journal already clean on disk.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        serving = asyncio.ensure_future(server.serve_forever())
        waiting = asyncio.ensure_future(stop.wait())
        await asyncio.wait(
            [serving, waiting], return_when=asyncio.FIRST_COMPLETED
        )
        waiting.cancel()
        serving.cancel()
        await server.shutdown(deadline=arguments.shutdown_deadline)
        print("server stopped (drained)", file=sys.stderr)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("server stopped", file=sys.stderr)
    return 0


def _cmd_replica(arguments) -> int:
    handler = _REPLICA_HANDLERS[arguments.replica_command]
    return handler(arguments)


def _cmd_replica_serve(arguments) -> int:
    import signal

    from repro.replication import Follower
    from repro.server import ReproServer
    from repro.storage import DurabilityOptions

    if arguments.socket is None and arguments.port is None:
        raise ReproError("replica serve needs --socket PATH or --port N")
    durability = (
        DurabilityOptions(mode=arguments.durability)
        if arguments.durability is not None
        else None
    )
    if arguments.metrics:
        from repro.obs import enable_metrics

        enable_metrics(True)
    follower = Follower(
        arguments.directory,
        arguments.primary,
        durability=durability,
        heartbeat_interval=arguments.heartbeat_interval,
        heartbeat_misses=arguments.heartbeat_misses,
        auto_promote=arguments.auto_promote,
        takeover=str(arguments.takeover) if arguments.takeover else None,
    )
    follower.start()

    async def run() -> None:
        server = ReproServer(
            follower.service,
            path=str(arguments.socket) if arguments.socket else None,
            host=arguments.host,
            port=arguments.port if arguments.port is not None else 0,
        )
        await server.start()
        loop = asyncio.get_running_loop()
        takeover_servers: list[ReproServer] = []

        def bind_takeover(path: str) -> None:
            # Runs from whichever thread triggered the promotion (wire
            # handler, heartbeat); schedule the bind onto the serving loop
            # and do not wait — promotion must not block on it.
            async def bind() -> None:
                if any(s.address == f"unix:{path}" for s in takeover_servers):
                    return  # a repeated promote already claimed this path
                extra = ReproServer(follower.service, path=path)
                await extra.start()
                takeover_servers.append(extra)
                print(
                    f"promoted: also serving at {extra.address} "
                    f"(old primary's endpoint)",
                    file=sys.stderr, flush=True,
                )

            asyncio.run_coroutine_threadsafe(bind(), loop)

        follower.on_takeover = bind_takeover
        print(
            f"replica {arguments.directory} at {server.address} following "
            f"{follower.primary} ({len(follower.service.store)} revisions, "
            f"bootstrap from {follower.last_sync_from})",
            file=sys.stderr,
            flush=True,
        )
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        serving = asyncio.ensure_future(server.serve_forever())
        waiting = asyncio.ensure_future(stop.wait())
        await asyncio.wait(
            [serving, waiting], return_when=asyncio.FIRST_COMPLETED
        )
        waiting.cancel()
        serving.cancel()
        await server.shutdown()
        for extra in takeover_servers:
            await extra.shutdown()
        print("replica stopped", file=sys.stderr)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("replica stopped", file=sys.stderr)
    finally:
        follower.close()
    return 0


def _cmd_replica_promote(arguments) -> int:
    from repro.api import connect

    kwargs = _client_connect_kwargs(arguments)
    if "path" in kwargs:
        target = f"serve:{kwargs['path']}"
    else:
        target = f"tcp:{kwargs['host']}:{kwargs['port']}"
    payload = {}
    if arguments.epoch is not None:
        payload["epoch"] = arguments.epoch
    if arguments.takeover is not None:
        payload["takeover"] = str(arguments.takeover)
    with connect(target) as conn:
        response = conn.call("repl-promote", **payload)
    print(
        f"promoted at epoch {response['epoch']}"
        + (f", taking over {arguments.takeover}" if arguments.takeover else ""),
        file=sys.stderr,
    )
    return 0


_REPLICA_HANDLERS = {
    "serve": _cmd_replica_serve,
    "promote": _cmd_replica_promote,
}


def _cmd_replicaset(arguments) -> int:
    from repro.replication import ReplicaSet

    supervisor = ReplicaSet(
        arguments.primary,
        arguments.followers,
        interval=arguments.interval,
        misses=arguments.misses,
        auto_promote=not arguments.no_auto_promote,
        report=lambda message: print(message, file=sys.stderr, flush=True),
    )
    print(
        f"supervising primary {supervisor.primary} with "
        f"{len(supervisor.followers)} follower(s), every "
        f"{supervisor.interval:g}s",
        file=sys.stderr,
        flush=True,
    )
    try:
        supervisor.run(duration=arguments.duration)
    except KeyboardInterrupt:
        print("supervisor stopped", file=sys.stderr)
    finally:
        supervisor.close()
    return 0


def _client_connect_kwargs(arguments) -> dict:
    if arguments.socket is None and arguments.port is None:
        raise ReproError("client needs --socket PATH or --port N")
    if arguments.socket is not None:
        return {"path": str(arguments.socket)}
    return {"host": arguments.host, "port": arguments.port}


def _print_answers(answers) -> None:
    if not answers:
        print("(no answers)")
        return
    for answer in answers:
        if answer:
            print(", ".join(f"{k} = {v}" for k, v in sorted(answer.items())))
        else:
            print("yes")


def _cmd_client(arguments) -> int:
    """Every client subcommand runs through the unified connection facade
    (``repro.connect``) — the same surface embedders use — except
    ``script``, which is deliberately a raw protocol tool."""
    import json

    from repro.api import ConflictError, RetryPolicy, connect

    if getattr(arguments, "target", None):
        target = arguments.target
    else:
        kwargs = _client_connect_kwargs(arguments)
        if "path" in kwargs:
            target = f"serve:{kwargs['path']}"
        else:
            target = f"tcp:{kwargs['host']}:{kwargs['port']}"
    retry = (
        RetryPolicy(attempts=arguments.retry)
        if getattr(arguments, "retry", None)
        else None
    )
    command = arguments.client_command
    with connect(target, retry=retry) as conn:
        if command == "ping":
            print(f"pong (protocol {conn.ping()['protocol']})")
        elif command == "query":
            _print_answers(conn.query(arguments.body))
        elif command == "apply":
            program = arguments.program.read_text(encoding="utf-8")
            revision = conn.apply(program, tag=arguments.tag)
            print(
                f"revision {revision.index} [{revision.tag}]: "
                f"+{revision.added} -{revision.removed} facts",
                file=sys.stderr,
            )
        elif command == "subscribe":
            stream = conn.subscribe(arguments.body)
            _print_answers(stream.answers)
            for received in range(max(0, arguments.pushes)):
                delta = stream.next(timeout=arguments.timeout)
                if delta is None:
                    # The connection is healthy — no commit touched the
                    # query in time.  Say that, don't blame the socket.
                    print(
                        f"error: no answer diff arrived within "
                        f"{arguments.timeout:g}s "
                        f"({received} of {arguments.pushes} received)",
                        file=sys.stderr,
                    )
                    return 1
                print(json.dumps(delta.as_push()), flush=True)
        elif command == "tx":
            return _run_client_tx(conn, arguments, ConflictError)
        elif command == "log":
            for revision in conn.log():
                marker = "*" if revision.snapshot else " "
                program = revision.program or "-"
                print(
                    f"{revision.index:>4} {marker} "
                    f"{revision.tag:<24} +{revision.added:<5} "
                    f"-{revision.removed:<5} {program}"
                )
        elif command == "as-of":
            # display-only: print the server's formatted text as-is (the
            # raw escape hatch) instead of parse+reformat round-tripping
            print(conn.call("as-of", revision=arguments.revision)["facts"])
        elif command == "stats":
            print(json.dumps(conn.stats(), indent=2, sort_keys=True))
        elif command == "metrics":
            response = conn.call("metrics")
            if arguments.json:
                print(json.dumps(response, indent=2, sort_keys=True))
            else:
                text = response.get("text", "")
                if text:
                    print(text, end="")
                if not response.get("enabled"):
                    print(
                        "(metrics disabled on the server — start it with "
                        "--metrics or REPRO_OBS=1)",
                        file=sys.stderr,
                    )
        elif command == "slowlog":
            payload = {"clear": True} if arguments.clear else {}
            response = conn.call("slowlog", **payload)
            print(json.dumps(response["slowlog"], indent=2, sort_keys=True))
        elif command == "script":
            if not hasattr(conn, "request"):
                raise ReproError(
                    "client script is a raw-protocol tool: it needs a "
                    "single served endpoint (--socket/--port), not a "
                    "routed target"
                )
            source = (
                sys.stdin.read()
                if arguments.file == "-"
                else Path(arguments.file).read_text(encoding="utf-8")
            )
            for line in source.splitlines():
                if not line.strip():
                    continue
                request = json.loads(line)
                response = conn.request(**_script_request(request))
                print(json.dumps(response), flush=True)
                for push in conn.drain_pushes():
                    print(json.dumps(push), flush=True)
        return 0


def _run_client_tx(conn, arguments, conflict_error) -> int:
    """One optimistic transaction with conflict retry.  The loop stays in
    the CLI (rather than `transaction(attempts=N)`) so every lost attempt
    prints its conflict notice — operators watch that stderr stream to
    spot contention."""
    program = arguments.program.read_text(encoding="utf-8")
    for attempt in range(1, max(1, arguments.retries) + 1):
        transaction = conn.transaction(tag=arguments.tag)
        try:
            with transaction:
                for body in arguments.read:
                    transaction.query(body)
                transaction.stage(program)
        except conflict_error as conflict:
            print(
                f"attempt {attempt}: conflict with revision "
                f"{conflict.conflicting_index} "
                f"[{conflict.conflicting_tag}], retrying",
                file=sys.stderr,
            )
            continue
        print(
            f"committed revision {transaction.result.revision.index} "
            f"(pinned {transaction.pinned}, attempt {attempt})",
            file=sys.stderr,
        )
        return 0
    print(f"error: gave up after {arguments.retries} conflicts", file=sys.stderr)
    return 1


def _cmd_cluster(arguments) -> int:
    handler = _CLUSTER_HANDLERS[arguments.cluster_command]
    return handler(arguments)


def _cmd_cluster_init(arguments) -> int:
    import json

    from repro.cluster.partition import split_base
    from repro.server.service import StoreService
    from repro.storage.serialize import JOURNAL_FILE

    if arguments.shards < 1:
        raise ReproError("a cluster needs at least one shard")
    base = parse_object_base(arguments.base.read_text(encoding="utf-8"))
    directory = arguments.directory
    directory.mkdir(parents=True, exist_ok=True)
    manifest_path = directory / "cluster.json"
    if manifest_path.exists():
        raise ReproError(
            f"a cluster manifest already exists at {manifest_path}; "
            f"refusing to repartition over it — pick a fresh directory"
        )
    pieces = split_base(base, arguments.shards)
    for shard, piece in enumerate(pieces):
        shard_dir = directory / f"shard-{shard}"
        if (shard_dir / JOURNAL_FILE).exists():
            raise ReproError(
                f"a journal already exists under {shard_dir}; refusing to "
                f"overwrite its history"
            )
        StoreService.create(
            piece.copy(), shard_dir, tag=arguments.tag,
            shard_id=shard, shard_count=arguments.shards,
        )
        print(
            f"shard {shard}: {len(piece)} facts -> {shard_dir}",
            file=sys.stderr,
        )
    manifest = {
        "shards": arguments.shards,
        "tag": arguments.tag,
        "directories": [f"shard-{i}" for i in range(arguments.shards)],
    }
    manifest_path.write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    print(
        f"initialized {arguments.shards}-shard cluster under {directory} "
        f"({len(base)} facts partitioned by host OID)"
    )
    return 0


def _read_cluster_manifest(directory: Path) -> dict:
    import json

    manifest_path = directory / "cluster.json"
    if not manifest_path.exists():
        raise ReproError(
            f"no cluster manifest at {manifest_path}; run "
            f"`repro cluster init --dir {directory} ...` first"
        )
    return json.loads(manifest_path.read_text(encoding="utf-8"))


def _cmd_cluster_launch(arguments) -> int:
    """Spawn one ``repro serve`` process per shard; with ``--supervise``
    restart any shard that dies, forever (the cluster's crash recovery —
    a restarted shard replays its journal and followers reconnect)."""
    import signal
    import subprocess
    import time

    directory = arguments.directory
    manifest = _read_cluster_manifest(directory)
    count = int(manifest["shards"])
    sockets = [directory / f"shard-{shard}.sock" for shard in range(count)]

    def spawn(shard: int) -> subprocess.Popen:
        sockets[shard].unlink(missing_ok=True)
        command = [
            sys.executable, "-m", "repro.cli", "serve",
            "--dir", str(directory / manifest["directories"][shard]),
            "--socket", str(sockets[shard]),
            "--shard-id", str(shard), "--shard-count", str(count),
        ]
        if arguments.metrics:
            command.append("--metrics")
        if arguments.durability is not None:
            command += ["--durability", arguments.durability]
        return subprocess.Popen(command)

    processes = {shard: spawn(shard) for shard in range(count)}
    stopping = False

    def stop(signum, frame):  # noqa: ARG001 - signal handler shape
        nonlocal stopping
        stopping = True

    signal.signal(signal.SIGTERM, stop)
    signal.signal(signal.SIGINT, stop)
    deadline = time.monotonic() + 30
    while not all(sock.exists() for sock in sockets):
        if stopping or time.monotonic() > deadline:
            break
        time.sleep(0.05)
    target = "cluster:" + ",".join(f"unix:{sock}" for sock in sockets)
    print(target, flush=True)
    print(
        f"launched {count} shard servers under {directory} "
        f"(pids {', '.join(str(p.pid) for p in processes.values())})",
        file=sys.stderr, flush=True,
    )
    exit_code = 0
    try:
        while not stopping:
            time.sleep(0.2)
            for shard, process in list(processes.items()):
                if process.poll() is None:
                    continue
                if arguments.supervise:
                    print(
                        f"shard {shard} exited "
                        f"({process.returncode}); restarting",
                        file=sys.stderr, flush=True,
                    )
                    processes[shard] = spawn(shard)
                else:
                    print(
                        f"shard {shard} exited ({process.returncode}); "
                        f"stopping the cluster",
                        file=sys.stderr, flush=True,
                    )
                    stopping = True
                    exit_code = 1
                    break
    finally:
        for process in processes.values():
            if process.poll() is None:
                process.terminate()
        for process in processes.values():
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
        print("cluster stopped", file=sys.stderr)
    return exit_code


def _cmd_cluster_status(arguments) -> int:
    import json

    from repro.api import connect

    with connect(arguments.target) as conn:
        pong = conn.ping()
        stats = conn.stats()
    if arguments.json:
        print(json.dumps(stats, indent=2, default=str))
        return 0 if pong["pong"] else 1
    cluster = stats.get("cluster") or {}
    router = cluster.get("router") or {}
    print(
        f"cluster: {router.get('shards', 0)} shards, revision "
        f"{router.get('revision', 0)} ({router.get('vector', '')}), "
        f"head [{stats.get('head_tag', '-')}]"
    )
    print(
        "shard  role      revisions  commits  conflicts  lag  "
        "subs  endpoint"
    )
    for entry in cluster.get("shards", ()):
        print(
            f"{entry['shard']:>5}  {str(entry.get('role') or '-'):<8}  "
            f"{entry.get('revisions', 0):>9}  {entry.get('commits', 0):>7}  "
            f"{entry.get('conflicts', 0):>9}  {entry.get('lag', 0):>3}  "
            f"{entry.get('subscriptions', 0):>4}  {entry.get('target', '')}"
        )
    return 0 if pong["pong"] else 1


_CLUSTER_HANDLERS = {
    "init": _cmd_cluster_init,
    "launch": _cmd_cluster_launch,
    "status": _cmd_cluster_status,
}


def _cmd_top(arguments) -> int:
    """Curses-free live dashboard: redraw ``render_dashboard`` over the
    stats document every ``--interval`` seconds with an ANSI clear."""
    import time

    from repro.api import connect
    from repro.obs import render_dashboard

    if arguments.directory is not None:
        # One-shot local mode: stats of an unserved journal directory.
        with connect(arguments.directory, readonly=True) as conn:
            for line in render_dashboard(
                conn.stats(), target=str(arguments.directory)
            ):
                print(line)
        return 0

    if arguments.target is not None:
        target = arguments.target
    elif arguments.socket is not None:
        target = f"serve:{arguments.socket}"
    elif arguments.port is not None:
        target = f"tcp:{arguments.host}:{arguments.port}"
    else:
        raise ReproError(
            "top needs --target T, --socket PATH, --port N, or --dir DIR"
        )
    iterations = arguments.iterations
    interval = max(0.1, arguments.interval)
    with connect(target) as conn:
        count = 0
        while True:
            stats = conn.stats()
            frame = render_dashboard(stats, target=target)
            if count:
                # Clear screen + home, only between frames — a single
                # finite iteration stays pipe-friendly for tests.
                print("\x1b[2J\x1b[H", end="")
            print("\n".join(frame), flush=True)
            count += 1
            if iterations and count >= iterations:
                return 0
            time.sleep(interval)


def _script_request(request: dict) -> dict:
    """A raw script line becomes ``AsyncClient.request(cmd, **payload)``."""
    payload = dict(request)
    cmd = payload.pop("cmd", None)
    if not isinstance(cmd, str):
        raise ReproError(f"script line needs a string 'cmd' field: {request}")
    payload.pop("id", None)  # the client numbers its own requests
    return {"cmd": cmd, **payload}


def _cmd_store(arguments) -> int:
    handler = _STORE_HANDLERS[arguments.store_command]
    return handler(arguments)


def _cmd_store_init(arguments) -> int:
    from repro.api import connect
    from repro.storage import StoreOptions
    from repro.storage.serialize import JOURNAL_FILE

    base = parse_object_base(arguments.base.read_text(encoding="utf-8"))
    overrides = {"delta_chain": not arguments.full_copy}
    if arguments.snapshot_interval is not None:
        overrides["snapshot_interval"] = arguments.snapshot_interval
    # connect() refuses to initialize over an existing journal, so history
    # cannot be overwritten from here.
    with connect(
        arguments.directory,
        base=base,
        tag=arguments.tag,
        options=StoreOptions(**overrides),
    ) as conn:
        facts = len(conn.as_of(0))
    journal = arguments.directory / JOURNAL_FILE
    print(f"initialized {journal} ({facts} facts)", file=sys.stderr)
    return 0


def _cmd_store_apply(arguments) -> int:
    from repro.api import connect

    program = parse_program(arguments.program.read_text(encoding="utf-8"))
    program.name = arguments.program.stem
    # connect() opens the journal as a writer: a torn tail line is repaired
    # on disk, and the commit below is journalled automatically.
    with connect(arguments.directory) as conn:
        revision = conn.apply(program, tag=arguments.tag)
    print(
        f"revision {revision.index} [{revision.tag}]: "
        f"+{revision.added} -{revision.removed} facts",
        file=sys.stderr,
    )
    return 0


def _cmd_store_log(arguments) -> int:
    from repro.api import connect

    # readonly: metadata only, no journal repair, no cold snapshots parsed
    with connect(arguments.directory, readonly=True) as conn:
        for revision in conn.log():
            marker = "*" if revision.snapshot else " "
            program = revision.program or "-"
            print(
                f"{revision.index:>4} {marker} {revision.tag:<24} "
                f"+{revision.added:<5} -{revision.removed:<5} {program}"
            )
    return 0


def _cmd_store_diff(arguments) -> int:
    from repro.api import connect

    with connect(arguments.directory, readonly=True) as conn:
        added, removed = conn.diff(
            arguments.older,
            arguments.newer,
            include_exists=arguments.include_exists,
        )
    for fact in added:
        print(f"+ {fact}")
    for fact in removed:
        print(f"- {fact}")
    return 0


def _cmd_store_as_of(arguments) -> int:
    from repro.api import connect

    with connect(arguments.directory, readonly=True) as conn:
        text = format_object_base(conn.as_of(arguments.revision))
    if arguments.out:
        arguments.out.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {arguments.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_store_compact(arguments) -> int:
    from repro.storage import compact_journal

    store = compact_journal(
        arguments.directory, snapshot_interval=arguments.interval
    )
    snapshots = sum(
        1 for r in store.revisions() if store.has_snapshot(r.index)
    )
    print(
        f"compacted {arguments.directory}: {len(store)} revisions, "
        f"{snapshots} snapshots",
        file=sys.stderr,
    )
    return 0


def _cmd_store_verify(arguments) -> int:
    import json

    from repro.storage import verify_journal

    report = verify_journal(arguments.directory)
    if arguments.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"{arguments.directory}: {report['revisions']} revisions, "
            f"{report['checksummed']} checksummed, "
            f"{report['unchecksummed']} pre-checksum, "
            f"{report['snapshots']} snapshots, "
            f"epoch {report['max_epoch']}"
        )
        for problem in report["problems"]:
            print(
                f"  line {problem['line']} (byte {problem['offset']}): "
                f"{problem['error']}"
            )
        for name in report["missing_snapshots"]:
            print(f"  missing snapshot: {name}")
        print("ok" if report["ok"] else "DAMAGED")
    return 0 if report["ok"] else 1


_STORE_HANDLERS = {
    "init": _cmd_store_init,
    "apply": _cmd_store_apply,
    "log": _cmd_store_log,
    "diff": _cmd_store_diff,
    "as-of": _cmd_store_as_of,
    "compact": _cmd_store_compact,
    "verify": _cmd_store_verify,
}

_HANDLERS = {
    "apply": _cmd_apply,
    "stratify": _cmd_stratify,
    "check": _cmd_check,
    "query": _cmd_query,
    "bench": _cmd_bench,
    "store": _cmd_store,
    "serve": _cmd_serve,
    "cluster": _cmd_cluster,
    "replica": _cmd_replica,
    "replicaset": _cmd_replicaset,
    "client": _cmd_client,
    "top": _cmd_top,
}


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
