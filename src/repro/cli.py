"""Command-line interface: run update-programs against object-base files.

Usage (installed as ``repro-updates``, also ``python -m repro``)::

    repro-updates apply --program update.upd --base world.ob [--trace]
    repro-updates stratify --program update.upd [--conditions abcd]
    repro-updates check --program update.upd
    repro-updates query --base world.ob "E.isa -> empl, E.sal -> S"
    repro-updates query --base world.ob --prepared --repeat 100 "E.sal -> S"
    repro-updates bench [--out BENCH_PR1.json] [--sizes 25 100 400]
    repro-updates bench --store [--out BENCH_PR2.json]
    repro-updates bench --queries [--out BENCH_PR3.json]
    repro-updates store init --dir STORE --base world.ob
    repro-updates store apply --dir STORE --program update.upd [--tag t]
    repro-updates store log --dir STORE
    repro-updates store diff --dir STORE OLDER NEWER
    repro-updates store as-of --dir STORE REVISION [--out new.ob]
    repro-updates store compact --dir STORE [--interval N]

``apply`` prints the new object base (``ob'``) to stdout, or writes it with
``--out``; ``--result-base`` dumps ``result(P)`` with all versions instead.
``store`` commands operate on a durable journal directory (JSONL delta log
plus periodic snapshots) holding a whole revision chain.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.engine import UpdateEngine
from repro.core.errors import ReproError
from repro.core.query import query_literals
from repro.core.safety import check_rule_safety
from repro.core.stratification import stratify
from repro.lang.parser import parse_body, parse_object_base, parse_program
from repro.lang.pretty import format_object_base

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-updates",
        description=(
            "Rule-based updates for object bases with version identities "
            "(Kramer/Lausen/Saake, VLDB 1992)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    apply_cmd = commands.add_parser("apply", help="run a program, print ob'")
    apply_cmd.add_argument("--program", required=True, type=Path)
    apply_cmd.add_argument("--base", required=True, type=Path)
    apply_cmd.add_argument(
        "--views",
        type=Path,
        help="derived-method rules (version-term heads) readable by the "
        "program's rule bodies (repro.ext.derived)",
    )
    apply_cmd.add_argument("--out", type=Path, help="write ob' here instead of stdout")
    apply_cmd.add_argument(
        "--trace", action="store_true", help="print the evaluation trace"
    )
    apply_cmd.add_argument(
        "--result-base",
        action="store_true",
        help="print result(P) (all versions) instead of ob'",
    )
    apply_cmd.add_argument(
        "--no-linearity-check",
        action="store_true",
        help="skip the Section 5 run-time check (a posteriori check still "
        "runs when building ob')",
    )

    stratify_cmd = commands.add_parser(
        "stratify", help="print the stratification and its justification"
    )
    stratify_cmd.add_argument("--program", required=True, type=Path)
    stratify_cmd.add_argument(
        "--conditions",
        default="abcd",
        help="subset of 'abcd' to apply (default: all, as in Section 4)",
    )

    check_cmd = commands.add_parser(
        "check", help="report safety and stratifiability per rule"
    )
    check_cmd.add_argument("--program", required=True, type=Path)
    check_cmd.add_argument(
        "--lint",
        action="store_true",
        help="also run the static diagnostics (repro.analysis.lint)",
    )

    query_cmd = commands.add_parser("query", help="answer a conjunctive query")
    query_cmd.add_argument("--base", required=True, type=Path)
    query_cmd.add_argument("body", help="query text, e.g. 'E.isa -> empl'")
    query_cmd.add_argument(
        "--prepared",
        action="store_true",
        help="compile the query once (join plan + secondary-index column "
        "selection) and execute via the prepared path",
    )
    query_cmd.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="execute the query N times and report serving timings on "
        "stderr (answers are printed once)",
    )

    from repro.bench.sweep import (
        DEFAULT_QUERY_UPDATES,
        DEFAULT_READS_PER_UPDATE,
        DEFAULT_REPEATS,
        DEFAULT_SIZES,
        DEFAULT_STORE_REVISIONS,
    )

    bench_cmd = commands.add_parser(
        "bench",
        help="run the P1 scaling sweep (semi-naive vs naive), the P2 "
        "versioned-store sweep (--store), or the P3 read-heavy "
        "prepared-query sweep (--queries), and write JSON",
    )
    bench_cmd.add_argument("--out", type=Path, default=None)
    bench_cmd.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    bench_cmd.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    bench_cmd.add_argument("--store", action="store_true")
    bench_cmd.add_argument(
        "--revisions", type=int, default=DEFAULT_STORE_REVISIONS
    )
    bench_cmd.add_argument("--queries", action="store_true")
    bench_cmd.add_argument(
        "--updates", type=int, default=DEFAULT_QUERY_UPDATES
    )
    bench_cmd.add_argument(
        "--reads", type=int, default=DEFAULT_READS_PER_UPDATE
    )

    store_cmd = commands.add_parser(
        "store", help="manage a durable versioned-store journal directory"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)

    def _dir_arg(sub):
        sub.add_argument(
            "--dir", required=True, type=Path, dest="directory",
            help="journal directory",
        )

    init_cmd = store_sub.add_parser(
        "init", help="create a journal from an object-base file"
    )
    _dir_arg(init_cmd)
    init_cmd.add_argument("--base", required=True, type=Path)
    init_cmd.add_argument("--tag", default="initial")
    init_cmd.add_argument(
        "--snapshot-interval", type=int, default=None,
        help="materialize a full snapshot every N revisions",
    )
    init_cmd.add_argument(
        "--full-copy", action="store_true",
        help="store a full snapshot at every revision (no delta chain)",
    )

    store_apply_cmd = store_sub.add_parser(
        "apply", help="run a program against the head, append one revision"
    )
    _dir_arg(store_apply_cmd)
    store_apply_cmd.add_argument("--program", required=True, type=Path)
    store_apply_cmd.add_argument("--tag", default="")

    log_cmd = store_sub.add_parser("log", help="list the revision chain")
    _dir_arg(log_cmd)

    diff_cmd = store_sub.add_parser(
        "diff", help="added/removed facts between two revisions"
    )
    _dir_arg(diff_cmd)
    diff_cmd.add_argument("older", help="revision tag or index")
    diff_cmd.add_argument("newer", help="revision tag or index")
    diff_cmd.add_argument("--include-exists", action="store_true")

    asof_cmd = store_sub.add_parser(
        "as-of", help="print the base as of a revision"
    )
    _dir_arg(asof_cmd)
    asof_cmd.add_argument("revision", help="revision tag or index")
    asof_cmd.add_argument("--out", type=Path, help="write here instead of stdout")

    compact_cmd = store_sub.add_parser(
        "compact", help="rewrite the journal under a fresh snapshot interval"
    )
    _dir_arg(compact_cmd)
    compact_cmd.add_argument("--interval", type=int, default=None)

    return parser


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    try:
        handler = _HANDLERS[arguments.command]
        return handler(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _cmd_apply(arguments) -> int:
    program = parse_program(arguments.program.read_text(encoding="utf-8"))
    base = parse_object_base(arguments.base.read_text(encoding="utf-8"))
    if arguments.views:
        from repro.ext.derived import DerivedUpdateEngine, parse_derived_program

        views = parse_derived_program(
            arguments.views.read_text(encoding="utf-8")
        )
        engine = DerivedUpdateEngine(
            views, check_linearity=not arguments.no_linearity_check
        )
    else:
        engine = UpdateEngine(
            collect_trace=arguments.trace,
            check_linearity=not arguments.no_linearity_check,
        )
    result = engine.apply(program, base)
    if arguments.trace:
        print(result.trace.render(), file=sys.stderr)
        print(file=sys.stderr)
    chosen = result.result_base if arguments.result_base else result.new_base
    text = format_object_base(chosen, include_exists=arguments.result_base)
    if arguments.out:
        arguments.out.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {arguments.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_stratify(arguments) -> int:
    program = parse_program(arguments.program.read_text(encoding="utf-8"))
    stratification = stratify(program, conditions=arguments.conditions)
    print(stratification.explain())
    return 0


def _cmd_check(arguments) -> int:
    program = parse_program(arguments.program.read_text(encoding="utf-8"))
    failures = 0
    for rule in program:
        try:
            check_rule_safety(rule)
            print(f"{rule.name}: safe")
        except ReproError as error:
            failures += 1
            print(f"{rule.name}: UNSAFE — {error}")
    try:
        stratification = stratify(program)
        print(f"stratification: {stratification.names()}")
    except ReproError as error:
        failures += 1
        print(f"stratification: FAILED — {error}")
    if arguments.lint:
        from repro.analysis import lint_program

        findings = lint_program(program)
        if findings:
            for finding in findings:
                print(finding)
        else:
            print("lint: clean")
    return 1 if failures else 0


def _cmd_query(arguments) -> int:
    import time

    base = parse_object_base(arguments.base.read_text(encoding="utf-8"))
    repeat = max(1, arguments.repeat)
    if arguments.prepared:
        from repro.core.query import prepare_query

        prepared = prepare_query(arguments.body)
        times = []
        for _ in range(repeat):
            start = time.perf_counter()
            answers = prepared.run(base)
            times.append(time.perf_counter() - start)
    else:
        literals = parse_body(arguments.body)
        times = []
        for _ in range(repeat):
            start = time.perf_counter()
            answers = query_literals(base, literals)
            times.append(time.perf_counter() - start)
    if repeat > 1:
        mode = "prepared" if arguments.prepared else "per-call"
        print(
            f"{mode}: {repeat} runs, best {min(times) * 1e3:.3f} ms, "
            f"mean {sum(times) / len(times) * 1e3:.3f} ms",
            file=sys.stderr,
        )
    if not answers:
        print("(no answers)")
        return 0
    for answer in answers:
        if answer:
            print(", ".join(f"{k} = {v}" for k, v in sorted(answer.items())))
        else:
            print("yes")
    return 0


def _cmd_bench(arguments) -> int:
    from repro.bench.sweep import main as bench_main

    argv = ["--repeats", str(arguments.repeats)]
    if arguments.out is not None:
        argv += ["--out", str(arguments.out)]
    argv += ["--sizes", *(str(s) for s in arguments.sizes)]
    if arguments.store:
        argv += ["--store", "--revisions", str(arguments.revisions)]
    if arguments.queries:
        argv += [
            "--queries",
            "--updates", str(arguments.updates),
            "--reads", str(arguments.reads),
        ]
    return bench_main(argv)


def _cmd_store(arguments) -> int:
    handler = _STORE_HANDLERS[arguments.store_command]
    return handler(arguments)


def _cmd_store_init(arguments) -> int:
    from repro.storage import StoreOptions, VersionedStore, save_store
    from repro.storage.serialize import JOURNAL_FILE

    existing = arguments.directory / JOURNAL_FILE
    if existing.exists():
        raise ReproError(
            f"a journal already exists at {existing}; refusing to overwrite "
            f"its history — pick a fresh directory"
        )
    base = parse_object_base(arguments.base.read_text(encoding="utf-8"))
    overrides = {"delta_chain": not arguments.full_copy}
    if arguments.snapshot_interval is not None:
        overrides["snapshot_interval"] = arguments.snapshot_interval
    store = VersionedStore(
        base, tag=arguments.tag, options=StoreOptions(**overrides)
    )
    journal = save_store(store, arguments.directory)
    print(f"initialized {journal} ({len(store.current)} facts)", file=sys.stderr)
    return 0


def _cmd_store_apply(arguments) -> int:
    from repro.storage import append_revision, load_store

    store = load_store(arguments.directory)
    program = parse_program(arguments.program.read_text(encoding="utf-8"))
    program.name = arguments.program.stem
    store.apply(program, tag=arguments.tag)
    append_revision(store, arguments.directory)
    head = store.head
    print(
        f"revision {head.index} [{head.tag}]: "
        f"+{len(head.added)} -{len(head.removed)} facts",
        file=sys.stderr,
    )
    return 0


def _cmd_store_log(arguments) -> int:
    from repro.storage import load_store

    # metadata only: lazy snapshot loading means no snap-*.json is parsed
    store = load_store(arguments.directory)
    for revision in store.revisions():
        marker = "*" if store.has_snapshot(revision.index) else " "
        program = revision.program_name or "-"
        print(
            f"{revision.index:>4} {marker} {revision.tag:<24} "
            f"+{len(revision.added):<5} -{len(revision.removed):<5} {program}"
        )
    return 0


def _cmd_store_diff(arguments) -> int:
    from repro.storage import load_store

    store = load_store(arguments.directory)
    added, removed = store.diff(
        _revision_ref(arguments.older),
        _revision_ref(arguments.newer),
        include_exists=arguments.include_exists,
    )
    for fact in sorted(added, key=str):
        print(f"+ {fact}")
    for fact in sorted(removed, key=str):
        print(f"- {fact}")
    return 0


def _cmd_store_as_of(arguments) -> int:
    from repro.storage import load_store

    store = load_store(arguments.directory)
    text = format_object_base(store.as_of(_revision_ref(arguments.revision)))
    if arguments.out:
        arguments.out.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {arguments.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_store_compact(arguments) -> int:
    from repro.storage import compact_journal

    store = compact_journal(
        arguments.directory, snapshot_interval=arguments.interval
    )
    snapshots = sum(
        1 for r in store.revisions() if store.has_snapshot(r.index)
    )
    print(
        f"compacted {arguments.directory}: {len(store)} revisions, "
        f"{snapshots} snapshots",
        file=sys.stderr,
    )
    return 0


def _revision_ref(text: str) -> str | int:
    """CLI revision references: digits mean an index, anything else a tag."""
    return int(text) if text.lstrip("-").isdigit() else text


_STORE_HANDLERS = {
    "init": _cmd_store_init,
    "apply": _cmd_store_apply,
    "log": _cmd_store_log,
    "diff": _cmd_store_diff,
    "as-of": _cmd_store_as_of,
    "compact": _cmd_store_compact,
}

_HANDLERS = {
    "apply": _cmd_apply,
    "stratify": _cmd_stratify,
    "check": _cmd_check,
    "query": _cmd_query,
    "bench": _cmd_bench,
    "store": _cmd_store,
}


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
