"""Command-line interface: run update-programs against object-base files.

Usage (installed as ``repro-updates``, also ``python -m repro``)::

    repro-updates apply --program update.upd --base world.ob [--trace]
    repro-updates stratify --program update.upd [--conditions abcd]
    repro-updates check --program update.upd
    repro-updates query --base world.ob "E.isa -> empl, E.sal -> S"
    repro-updates bench [--out BENCH_PR1.json] [--sizes 25 100 400]

``apply`` prints the new object base (``ob'``) to stdout, or writes it with
``--out``; ``--result-base`` dumps ``result(P)`` with all versions instead.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.engine import UpdateEngine
from repro.core.errors import ReproError
from repro.core.query import query_literals
from repro.core.safety import check_rule_safety
from repro.core.stratification import stratify
from repro.lang.parser import parse_body, parse_object_base, parse_program
from repro.lang.pretty import format_object_base

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-updates",
        description=(
            "Rule-based updates for object bases with version identities "
            "(Kramer/Lausen/Saake, VLDB 1992)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    apply_cmd = commands.add_parser("apply", help="run a program, print ob'")
    apply_cmd.add_argument("--program", required=True, type=Path)
    apply_cmd.add_argument("--base", required=True, type=Path)
    apply_cmd.add_argument(
        "--views",
        type=Path,
        help="derived-method rules (version-term heads) readable by the "
        "program's rule bodies (repro.ext.derived)",
    )
    apply_cmd.add_argument("--out", type=Path, help="write ob' here instead of stdout")
    apply_cmd.add_argument(
        "--trace", action="store_true", help="print the evaluation trace"
    )
    apply_cmd.add_argument(
        "--result-base",
        action="store_true",
        help="print result(P) (all versions) instead of ob'",
    )
    apply_cmd.add_argument(
        "--no-linearity-check",
        action="store_true",
        help="skip the Section 5 run-time check (a posteriori check still "
        "runs when building ob')",
    )

    stratify_cmd = commands.add_parser(
        "stratify", help="print the stratification and its justification"
    )
    stratify_cmd.add_argument("--program", required=True, type=Path)
    stratify_cmd.add_argument(
        "--conditions",
        default="abcd",
        help="subset of 'abcd' to apply (default: all, as in Section 4)",
    )

    check_cmd = commands.add_parser(
        "check", help="report safety and stratifiability per rule"
    )
    check_cmd.add_argument("--program", required=True, type=Path)
    check_cmd.add_argument(
        "--lint",
        action="store_true",
        help="also run the static diagnostics (repro.analysis.lint)",
    )

    query_cmd = commands.add_parser("query", help="answer a conjunctive query")
    query_cmd.add_argument("--base", required=True, type=Path)
    query_cmd.add_argument("body", help="query text, e.g. 'E.isa -> empl'")

    from repro.bench.sweep import DEFAULT_OUT, DEFAULT_REPEATS, DEFAULT_SIZES

    bench_cmd = commands.add_parser(
        "bench",
        help="run the P1 scaling sweep (semi-naive vs naive) and write JSON",
    )
    bench_cmd.add_argument("--out", type=Path, default=Path(DEFAULT_OUT))
    bench_cmd.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    bench_cmd.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))

    return parser


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    try:
        handler = _HANDLERS[arguments.command]
        return handler(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _cmd_apply(arguments) -> int:
    program = parse_program(arguments.program.read_text(encoding="utf-8"))
    base = parse_object_base(arguments.base.read_text(encoding="utf-8"))
    if arguments.views:
        from repro.ext.derived import DerivedUpdateEngine, parse_derived_program

        views = parse_derived_program(
            arguments.views.read_text(encoding="utf-8")
        )
        engine = DerivedUpdateEngine(
            views, check_linearity=not arguments.no_linearity_check
        )
    else:
        engine = UpdateEngine(
            collect_trace=arguments.trace,
            check_linearity=not arguments.no_linearity_check,
        )
    result = engine.apply(program, base)
    if arguments.trace:
        print(result.trace.render(), file=sys.stderr)
        print(file=sys.stderr)
    chosen = result.result_base if arguments.result_base else result.new_base
    text = format_object_base(chosen, include_exists=arguments.result_base)
    if arguments.out:
        arguments.out.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {arguments.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_stratify(arguments) -> int:
    program = parse_program(arguments.program.read_text(encoding="utf-8"))
    stratification = stratify(program, conditions=arguments.conditions)
    print(stratification.explain())
    return 0


def _cmd_check(arguments) -> int:
    program = parse_program(arguments.program.read_text(encoding="utf-8"))
    failures = 0
    for rule in program:
        try:
            check_rule_safety(rule)
            print(f"{rule.name}: safe")
        except ReproError as error:
            failures += 1
            print(f"{rule.name}: UNSAFE — {error}")
    try:
        stratification = stratify(program)
        print(f"stratification: {stratification.names()}")
    except ReproError as error:
        failures += 1
        print(f"stratification: FAILED — {error}")
    if arguments.lint:
        from repro.analysis import lint_program

        findings = lint_program(program)
        if findings:
            for finding in findings:
                print(finding)
        else:
            print("lint: clean")
    return 1 if failures else 0


def _cmd_query(arguments) -> int:
    base = parse_object_base(arguments.base.read_text(encoding="utf-8"))
    answers = query_literals(base, parse_body(arguments.body))
    if not answers:
        print("(no answers)")
        return 0
    for answer in answers:
        if answer:
            print(", ".join(f"{k} = {v}" for k, v in sorted(answer.items())))
        else:
            print("yes")
    return 0


def _cmd_bench(arguments) -> int:
    from repro.bench.sweep import main as bench_main

    argv = ["--out", str(arguments.out), "--repeats", str(arguments.repeats)]
    argv += ["--sizes", *(str(s) for s in arguments.sizes)]
    return bench_main(argv)


_HANDLERS = {
    "apply": _cmd_apply,
    "stratify": _cmd_stratify,
    "check": _cmd_check,
    "query": _cmd_query,
    "bench": _cmd_bench,
}


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
