"""repro — reproduction of *Updates in a Rule-Based Language for Objects*
(Kramer, Lausen, Saake; VLDB 1992).

A rule language for updating object bases, built on *version identities*:
ground terms like ``ins(del(mod(phil)))`` that name an object's versions and
encode its update history.  Update-programs have fixpoint semantics computed
bottom-up along a stratification derived from the rules themselves.

Quickstart::

    from repro import UpdateEngine, parse_object_base, parse_program

    base = parse_object_base('''
        henry.isa -> empl.   henry.sal -> 250.
    ''')
    program = parse_program('''
        raise: mod[E].sal -> (S, S2) <=
            E.isa -> empl, E.sal -> S, S2 = S * 1.1.
    ''')
    result = UpdateEngine().apply(program, base)
    # result.new_base now holds henry.sal -> 275.0

Subpackages
-----------
``repro.core``
    The paper's contribution: terms, truth, the ``T_P`` operator,
    stratification, evaluation, version linearity, new-base construction.
``repro.lang``
    Concrete syntax: parser and pretty printer.
``repro.datalog``
    A stratified Datalog engine (the substrate the paper's language is "a
    variant of"), also used by the baselines.
``repro.baselines``
    Section 2.4 comparison points: naive single-time-step update semantics
    and Logres-style rule modules.
``repro.storage``
    Versioned store: snapshots, transaction history, serialization.
``repro.workloads``
    Workload generators for examples, tests and benchmarks.
``repro.ext``
    Section 6 extension: depth-bounded quantification over VIDs.
``repro.server``
    Concurrent serving: MVCC sessions, optimistic transactions, push-based
    live queries, and the asyncio JSON-lines wire protocol.
"""

from repro.core import (
    BuiltinError,
    EvaluationError,
    EvaluationLimitError,
    EvaluationOptions,
    Fact,
    ObjectBase,
    Oid,
    ProgramError,
    ReproError,
    SafetyError,
    Stratification,
    StratificationError,
    Term,
    TermError,
    UpdateEngine,
    UpdateKind,
    UpdateProgram,
    UpdateResult,
    UpdateRule,
    Var,
    VersionDepthError,
    VersionId,
    VersionVar,
    VersionLinearityError,
    build_new_base,
    evaluate,
    stratify,
)
from repro.core.query import (
    PreparedQuery,
    method_results,
    prepare_query,
    query_literals,
    result_value,
)
from repro.lang import (
    ParseError,
    format_object_base,
    format_program,
    format_rule,
    format_term,
    parse_body,
    parse_object_base,
    parse_program,
    parse_rule,
    parse_term,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core types
    "Oid", "Var", "VersionVar", "VersionId", "Term", "UpdateKind", "Fact",
    "ObjectBase", "UpdateRule", "UpdateProgram",
    "UpdateEngine", "UpdateResult", "EvaluationOptions",
    "Stratification", "stratify", "evaluate", "build_new_base",
    # queries
    "query", "query_literals", "method_results", "result_value",
    "PreparedQuery", "prepare_query",
    # language
    "parse_program", "parse_rule", "parse_body", "parse_object_base",
    "parse_term", "format_program", "format_rule", "format_term",
    "format_object_base",
    # errors
    "ReproError", "TermError", "ProgramError", "SafetyError",
    "StratificationError", "EvaluationError", "EvaluationLimitError",
    "VersionDepthError", "VersionLinearityError", "BuiltinError",
    "ParseError",
]


def query(base: ObjectBase, text: str) -> list[dict[str, object]]:
    """Answer a conjunctive query written in the concrete syntax.

    >>> query(base, "E.isa -> empl, E.sal -> S")   # doctest: +SKIP
    [{'E': 'bob', 'S': 4200}, {'E': 'phil', 'S': 4000}]
    """
    return query_literals(base, parse_body(text))
