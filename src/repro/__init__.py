"""repro — reproduction of *Updates in a Rule-Based Language for Objects*
(Kramer, Lausen, Saake; VLDB 1992).

A rule language for updating object bases, built on *version identities*:
ground terms like ``ins(del(mod(phil)))`` that name an object's versions and
encode its update history.  Update-programs have fixpoint semantics computed
bottom-up along a stratification derived from the rules themselves.

Quickstart — the unified connection API (one surface over an in-memory
store, a durable journal directory, or a served socket)::

    import repro

    conn = repro.connect("memory:", base='''
        henry.isa -> empl.   henry.sal -> 250.
    ''')
    conn.apply('''
        raise: mod[E].sal -> (S, S2) <=
            E.isa -> empl, E.sal -> S, S2 = S * 1.1.
    ''', tag="raise")
    conn.query("E.sal -> S")        # [{'E': 'henry', 'S': 275.0}]
    conn.as_of("initial")           # the base before the raise
    # repro.connect("path/to/store") and repro.connect("serve:/tmp/x.sock")
    # accept the same calls and answer in the same shapes.

The engine layer underneath stays available for direct use::

    from repro import UpdateEngine, parse_object_base, parse_program

    result = UpdateEngine().apply(parse_program(text), parse_object_base(ob))
    # result.new_base, result.result_base, result.final_versions, ...

Subpackages
-----------
``repro.api``
    The unified connection facade: :func:`connect`, the
    :class:`~repro.api.Connection` surface, transactions with conflict
    retry, subscription streams, and the shared result model.
``repro.core``
    The paper's contribution: terms, truth, the ``T_P`` operator,
    stratification, evaluation, version linearity, new-base construction.
``repro.lang``
    Concrete syntax: parser and pretty printer.
``repro.datalog``
    A stratified Datalog engine (the substrate the paper's language is "a
    variant of"), also used by the baselines.
``repro.baselines``
    Section 2.4 comparison points: naive single-time-step update semantics
    and Logres-style rule modules.
``repro.storage``
    Versioned store: snapshots, transaction history, serialization.
``repro.workloads``
    Workload generators for examples, tests and benchmarks.
``repro.ext``
    Section 6 extension: depth-bounded quantification over VIDs.
``repro.server``
    Concurrent serving: MVCC sessions, optimistic transactions, push-based
    live queries, and the asyncio JSON-lines wire protocol.
"""

from repro.core import (
    BuiltinError,
    EvaluationError,
    EvaluationLimitError,
    EvaluationOptions,
    Fact,
    ObjectBase,
    Oid,
    ProgramError,
    ReproError,
    SafetyError,
    Stratification,
    StratificationError,
    Term,
    TermError,
    UpdateEngine,
    UpdateKind,
    UpdateProgram,
    UpdateResult,
    UpdateRule,
    Var,
    VersionDepthError,
    VersionId,
    VersionVar,
    VersionLinearityError,
    build_new_base,
    evaluate,
    stratify,
)
from repro.core.query import (
    PreparedQuery,
    method_results,
    prepare_query,
    query_literals,
    result_value,
)
from repro.lang import (
    ParseError,
    format_object_base,
    format_program,
    format_rule,
    format_term,
    parse_body,
    parse_object_base,
    parse_program,
    parse_rule,
    parse_term,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # the unified connection API
    "connect", "Connection", "RetryPolicy", "DurabilityOptions",
    # core types
    "Oid", "Var", "VersionVar", "VersionId", "Term", "UpdateKind", "Fact",
    "ObjectBase", "UpdateRule", "UpdateProgram",
    "UpdateEngine", "UpdateResult", "EvaluationOptions",
    "Stratification", "stratify", "evaluate", "build_new_base",
    # queries
    "query", "query_literals", "method_results", "result_value",
    "PreparedQuery", "prepare_query",
    # language
    "parse_program", "parse_rule", "parse_body", "parse_object_base",
    "parse_term", "format_program", "format_rule", "format_term",
    "format_object_base",
    # errors
    "ReproError", "TermError", "ProgramError", "SafetyError",
    "StratificationError", "EvaluationError", "EvaluationLimitError",
    "VersionDepthError", "VersionLinearityError", "BuiltinError",
    "ParseError",
]


def __getattr__(name: str):
    """Lazy surface for the connection facade (PEP 562): ``repro.connect``
    and ``repro.Connection`` resolve to :mod:`repro.api`'s objects on
    first touch, so engine-only users (``repro apply`` one-shots, the
    paper's core path) never pay the server/asyncio import cost."""
    if name in ("connect", "Connection", "RetryPolicy", "DurabilityOptions"):
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def query(base: ObjectBase, text: str) -> list[dict[str, object]]:
    """Answer a conjunctive query written in the concrete syntax.

    >>> query(base, "E.isa -> empl, E.sal -> S")   # doctest: +SKIP
    [{'E': 'bob', 'S': 4200}, {'E': 'phil', 'S': 4000}]
    """
    return query_literals(base, parse_body(text))
