"""Derived methods — the "derived objects" generalisation of Section 6.

The paper restricts itself to base methods ("we do not consider derived
objects ... We do not see any principal problems to generalize our approach
in this direction").  This module supplies the generalisation:

* a **derived rule** has a *version-term* head::

      senior: X.senior -> yes <= X.sal -> S, S > 4000.

  and defines a method by deduction instead of storage;
* derived methods are **views**: they are materialised on demand, never
  stored, never copied into new versions (a copied ``senior`` flag would go
  stale the moment the underlying ``sal`` changes), and never updatable —
  an update-program whose head targets a derived method is rejected;
* derived rules may use other derived methods, recursively, with stratified
  negation among derived methods (method-level stratification, exactly the
  Datalog construction the update language adapts at the version level);
* during an update-process the view is recomputed before every ``T_P``
  application, so rule bodies always see derived facts consistent with the
  current version states — including on freshly created versions.

A view whose head host is a plain variable (``X.senior -> yes``) attaches
to *objects* only — variables range over ``O`` (DESIGN.md D2).  For a
**version-transparent** view, compose with the other Section 6 extension
and use a version variable::

    senior: ?W.senior -> yes <= ?W.sal -> S, S > 4000.

Now ``mod(phil).senior`` is derivable from ``mod(phil)``'s state, so update
rules in later strata can test derived properties of intermediate versions.

:class:`DerivedUpdateEngine` packages the interleaving; standalone
materialisation is :func:`materialize`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import networkx as nx

from repro.core.atoms import BuiltinAtom, Literal, UpdateAtom, VersionAtom
from repro.core.consequence import apply_tp, tp_step
from repro.core.engine import UpdateResult
from repro.core.errors import (
    EvaluationLimitError,
    ProgramError,
    StratificationError,
)
from repro.core.evaluation import EvaluationOptions
from repro.core.facts import EXISTS
from repro.core.grounding import match_body
from repro.core.linearity import LinearityTracker
from repro.core.newbase import build_new_base
from repro.core.objectbase import ObjectBase
from repro.core.rules import UpdateProgram
from repro.core.safety import check_program_safety
from repro.core.stratification import stratify
from repro.core.trace import EvaluationTrace
from repro.lang.parser import parse_derived_rules

__all__ = [
    "DerivedRule",
    "DerivedProgram",
    "parse_derived_program",
    "materialize",
    "DerivedUpdateEngine",
]


@dataclass(frozen=True)
class DerivedRule:
    """One view definition: a version-term head over a body of literals."""

    head: VersionAtom
    body: tuple[Literal, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if self.head.method == EXISTS:
            raise ProgramError("the system method 'exists' cannot be derived")
        unlimited = self.head.variables - _limited(self.body)
        if unlimited:
            names = ", ".join(sorted(v.name for v in unlimited))
            raise ProgramError(
                f"derived rule {self.name or self.head}: head variable(s) "
                f"{names} are not limited by the positive body"
            )

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} <= {' ^ '.join(str(b) for b in self.body)}."


def _limited(body: tuple[Literal, ...]):
    from repro.core.exprs import expr_variables

    limited = set()
    equalities = []
    for literal in body:
        if not literal.positive:
            continue
        atom = literal.atom
        if isinstance(atom, (VersionAtom, UpdateAtom)):
            limited |= atom.variables
        elif isinstance(atom, BuiltinAtom) and atom.op == "=":
            equalities.append(atom)
    changed = True
    while changed:
        changed = False
        for eq in equalities:
            for target, source in ((eq.left, eq.right), (eq.right, eq.left)):
                from repro.core.terms import Var

                if (
                    isinstance(target, Var)
                    and target not in limited
                    and expr_variables(source) <= limited
                ):
                    limited.add(target)
                    changed = True
    return limited


class DerivedProgram:
    """A set of derived rules with a method-level stratification.

    The derived methods (head method names) must be disjoint from the base
    methods of any object base the program is materialised over — checked
    at materialisation time.
    """

    def __init__(self, rules: Iterable[DerivedRule], name: str = "views"):
        self.name = name
        named: list[DerivedRule] = []
        seen: set[str] = set()
        for index, rule in enumerate(rules, start=1):
            rule_name = rule.name or f"view{index}"
            if rule_name in seen:
                raise ProgramError(f"duplicate derived-rule name {rule_name!r}")
            seen.add(rule_name)
            if rule.name != rule_name:
                rule = DerivedRule(rule.head, rule.body, rule_name)
            named.append(rule)
        self.rules: tuple[DerivedRule, ...] = tuple(named)
        self.derived_methods: frozenset[str] = frozenset(
            rule.head.method for rule in self.rules
        )
        self._strata = self._stratify()

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def _stratify(self) -> tuple[tuple[DerivedRule, ...], ...]:
        """Stratify by derived-method name (negation edges strict)."""
        graph = nx.DiGraph()
        for method in self.derived_methods:
            graph.add_node(method)
        for rule in self.rules:
            for literal in rule.body:
                atom = literal.atom
                if not isinstance(atom, VersionAtom):
                    continue
                if atom.method not in self.derived_methods:
                    continue
                strict = not literal.positive
                edge = (atom.method, rule.head.method)
                if graph.has_edge(*edge):
                    graph[edge[0]][edge[1]]["strict"] |= strict
                else:
                    graph.add_edge(*edge, strict=strict)

        condensation = nx.condensation(graph)
        component_of = condensation.graph["mapping"]
        for lower, upper, data in graph.edges(data=True):
            if data["strict"] and component_of[lower] == component_of[upper]:
                raise StratificationError(
                    f"derived method {upper!r} depends negatively on itself "
                    f"through {lower!r}"
                )
        strict_between: dict[tuple[int, int], bool] = {}
        for lower, upper, data in graph.edges(data=True):
            key = (component_of[lower], component_of[upper])
            strict_between[key] = strict_between.get(key, False) or data["strict"]
        level: dict[int, int] = {}
        for component in nx.topological_sort(condensation):
            best = 0
            for predecessor in condensation.predecessors(component):
                step = 1 if strict_between.get((predecessor, component)) else 0
                best = max(best, level[predecessor] + step)
            level[component] = best
        method_level = {m: level[component_of[m]] for m in self.derived_methods}
        max_level = max(method_level.values(), default=0)
        buckets: list[list[DerivedRule]] = [[] for _ in range(max_level + 1)]
        for rule in self.rules:
            buckets[method_level[rule.head.method]].append(rule)
        return tuple(tuple(bucket) for bucket in buckets if bucket)

    def check_disjoint(self, base: ObjectBase) -> None:
        """Reject bases that *store* facts under a derived method name."""
        for fact in base:
            if fact.method in self.derived_methods:
                raise ProgramError(
                    f"base stores {fact} but {fact.method!r} is a derived "
                    f"method — derived methods are views, never stored"
                )

    def check_not_updated(self, program: UpdateProgram) -> None:
        """Reject update-programs that try to update a derived method."""
        for rule in program:
            if rule.head.method in self.derived_methods:
                raise ProgramError(
                    f"rule {rule.name!r} updates derived method "
                    f"{rule.head.method!r}; derived methods are defined by "
                    f"rules and cannot be updated (the paper's base-method "
                    f"restriction, §2.1)"
                )


def parse_derived_program(text: str, name: str = "views") -> DerivedProgram:
    """Parse derived rules from concrete syntax (version-term heads)."""
    return DerivedProgram(
        [DerivedRule(head, body, rule_name)
         for head, body, rule_name in parse_derived_rules(text)],
        name,
    )


def materialize(
    base: ObjectBase,
    views: DerivedProgram,
    *,
    max_iterations: int = 10_000,
) -> ObjectBase:
    """The base enriched with all derivable view facts (a fresh copy).

    Evaluates the derived strata bottom-up to a fixpoint with the same
    matcher as the update engine; the input base is not modified.
    """
    views.check_disjoint(base)
    enriched = base.copy()
    for stratum in views._strata:
        for _round in range(max_iterations):
            changed = False
            for rule in stratum:
                # Materialise the bindings before mutating: the matcher
                # iterates the live indexes of ``enriched``.
                derived = [
                    rule.head.substitute(binding).to_fact()
                    for binding in match_body(
                        rule.body, enriched, rule_name=rule.name
                    )
                ]
                for fact in derived:
                    changed |= enriched.add(fact)
            if not changed:
                break
        else:
            raise EvaluationLimitError(0, max_iterations)
    return enriched


class DerivedUpdateEngine:
    """An update engine whose rule bodies can read derived methods.

    Before every ``T_P`` application the view overlay is recomputed over
    the current version states, passed to step 1 as the *match base*, and
    discarded — steps 2/3 copy from the pure base, so view facts are never
    stored or copied into versions (and a ``del[v].*`` cannot delete them).
    """

    def __init__(self, views: DerivedProgram, **option_overrides):
        self.views = views
        self.options = EvaluationOptions(**option_overrides)

    def evaluate(self, program: UpdateProgram, base: ObjectBase):
        options = self.options
        self.views.check_not_updated(program)
        if options.check_safety:
            check_program_safety(program)
        stratification = stratify(program)

        working = base.copy()
        working.ensure_exists()
        self.views.check_disjoint(working)

        tracker = LinearityTracker()
        if options.check_linearity:
            tracker.seed_from(working)

        iterations = 0
        for stratum_index, stratum in enumerate(stratification):
            while True:
                iterations += 1
                if iterations > options.max_iterations_per_stratum * len(
                    stratification
                ):
                    raise EvaluationLimitError(
                        stratum_index, options.max_iterations_per_stratum
                    )
                overlay = materialize(working, self.views)
                step = tp_step(
                    stratum,
                    working,
                    match_base=overlay,
                    create_missing_objects=options.create_missing_objects,
                )
                fresh = [
                    version
                    for version in step.new_versions
                    if not working.version_exists(version)
                    and not working.state_of(version)
                ]
                changed = apply_tp(working, step)
                if options.check_linearity:
                    for version in sorted(fresh, key=str):
                        tracker.observe(version)
                if not changed:
                    break

        from repro.core.evaluation import EvaluationOutcome

        finals = tracker.latest if options.check_linearity else {}
        return EvaluationOutcome(
            working, stratification, EvaluationTrace(), finals, iterations
        )

    def apply(self, program: UpdateProgram, base: ObjectBase) -> UpdateResult:
        """Full pipeline; ``result.new_base`` is the pure ``ob'`` — call
        :meth:`view` on it to see the derived methods of the new state."""
        outcome = self.evaluate(program, base)
        new_base = build_new_base(outcome.result_base, outcome.final_versions or None)
        return UpdateResult(
            new_base=new_base,
            result_base=outcome.result_base,
            final_versions=outcome.final_versions,
            stratification=outcome.stratification,
            trace=outcome.trace,
            iterations=outcome.iterations,
        )

    def view(self, base: ObjectBase) -> ObjectBase:
        """Materialise the views over any base (e.g. an ``ob'``)."""
        return materialize(base, self.views)
