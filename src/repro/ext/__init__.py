"""Extensions the paper's Section 6 proposes as future work.

* :mod:`repro.ext.vidvars` — quantification over VIDs (``?W`` version
  variables, body positions);
* :mod:`repro.ext.derived` — derived methods ("derived objects"): methods
  defined by rules instead of storage, readable by update-rules as views;
* :mod:`repro.ext.schema` — the schema-evolution bookkeeping the paper
  connects to [SZ87]: method signatures per class, diffed across updates.
"""

from repro.ext.derived import (
    DerivedProgram,
    DerivedRule,
    DerivedUpdateEngine,
    materialize,
    parse_derived_program,
)
from repro.ext.vidvars import (
    VersionVar,
    audit_history_program,
    uses_version_vars,
)

__all__ = [
    "VersionVar",
    "uses_version_vars",
    "audit_history_program",
    "DerivedRule",
    "DerivedProgram",
    "DerivedUpdateEngine",
    "materialize",
    "parse_derived_program",
]
