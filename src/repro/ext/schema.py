"""Schema evolution bookkeeping — the [SZ87] connection of Section 2.4.

    "The way we consider inserts and deletions would require changes of
    corresponding class-definitions in a strongly typed environment,
    because methods become undefined, respectively defined w.r.t. some
    objects according to the type of the update."

The update language itself is untyped (the paper deliberately leaves out
classes), but an update-process still *implies* schema changes: after the
Figure 2 update, the class ``hpe`` exists, ``phil`` answers a method he did
not answer before, and ``bob``'s class membership is gone.  This module
computes that implied evolution:

* :func:`class_signatures` — for every class ``c`` (objects with
  ``isa -> c``), the *mandatory* signature (methods every member answers)
  and the *optional* signature (methods some member answers);
* :func:`schema_delta` — the difference between two bases' schemas: classes
  added/removed, methods that became defined/undefined per class — exactly
  the class-definition changes a strongly typed environment would need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.facts import EXISTS
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid

__all__ = [
    "MethodSignature",
    "ClassSignature",
    "class_signatures",
    "SchemaDelta",
    "schema_delta",
]

#: A method signature: name and argument count.
MethodSignature = tuple[str, int]


@dataclass(frozen=True)
class ClassSignature:
    """The inferred signature of one class.

    ``mandatory`` methods are answered by *every* member, ``optional`` by
    at least one; ``members`` are the OIDs with ``isa -> class``.
    """

    class_name: Oid
    members: frozenset[Oid]
    mandatory: frozenset[MethodSignature]
    optional: frozenset[MethodSignature]

    def __str__(self) -> str:
        def fmt(signatures):
            return ", ".join(
                f"{name}/{arity}" for name, arity in sorted(signatures)
            ) or "-"

        return (
            f"class {self.class_name} ({len(self.members)} members): "
            f"mandatory {{{fmt(self.mandatory)}}}, optional {{{fmt(self.optional)}}}"
        )


def class_signatures(
    base: ObjectBase, *, class_method: str = "isa"
) -> dict[Oid, ClassSignature]:
    """Infer the per-class signatures of ``base``.

    Classes are the results of ``class_method`` applications on OID hosts;
    ``exists`` and the class method itself are bookkeeping, not signature.
    """
    members: dict[Oid, set[Oid]] = {}
    for fact in base.facts_by_method(class_method, 0):
        if isinstance(fact.host, Oid):
            members.setdefault(fact.result, set()).add(fact.host)

    signatures: dict[Oid, ClassSignature] = {}
    for class_name, objects in members.items():
        per_object: list[frozenset[MethodSignature]] = []
        for obj in objects:
            methods = frozenset(
                (f.method, len(f.args))
                for f in base.facts_by_host(obj)
                if f.method not in (EXISTS, class_method)
            )
            per_object.append(methods)
        mandatory = frozenset.intersection(*per_object) if per_object else frozenset()
        optional = frozenset().union(*per_object) if per_object else frozenset()
        signatures[class_name] = ClassSignature(
            class_name, frozenset(objects), mandatory, optional
        )
    return signatures


@dataclass(frozen=True)
class SchemaDelta:
    """Implied schema changes between two bases."""

    classes_added: frozenset[Oid]
    classes_removed: frozenset[Oid]
    methods_defined: dict[Oid, frozenset[MethodSignature]] = field(default_factory=dict)
    methods_undefined: dict[Oid, frozenset[MethodSignature]] = field(default_factory=dict)
    membership_gained: dict[Oid, frozenset[Oid]] = field(default_factory=dict)
    membership_lost: dict[Oid, frozenset[Oid]] = field(default_factory=dict)

    def is_empty(self) -> bool:
        return not (
            self.classes_added
            or self.classes_removed
            or any(self.methods_defined.values())
            or any(self.methods_undefined.values())
            or any(self.membership_gained.values())
            or any(self.membership_lost.values())
        )

    def render(self) -> str:
        """A human-readable evolution report."""
        lines: list[str] = []
        for name in sorted(self.classes_added, key=str):
            lines.append(f"+ class {name}")
        for name in sorted(self.classes_removed, key=str):
            lines.append(f"- class {name}")
        for cls in sorted(self.methods_defined, key=str):
            for method, arity in sorted(self.methods_defined[cls]):
                lines.append(f"+ {cls}: method {method}/{arity} became defined")
        for cls in sorted(self.methods_undefined, key=str):
            for method, arity in sorted(self.methods_undefined[cls]):
                lines.append(f"- {cls}: method {method}/{arity} became undefined")
        for cls in sorted(self.membership_gained, key=str):
            for obj in sorted(self.membership_gained[cls], key=str):
                lines.append(f"+ {cls}: member {obj}")
        for cls in sorted(self.membership_lost, key=str):
            for obj in sorted(self.membership_lost[cls], key=str):
                lines.append(f"- {cls}: member {obj}")
        return "\n".join(lines) if lines else "(no schema changes)"


def schema_delta(
    old_base: ObjectBase, new_base: ObjectBase, *, class_method: str = "isa"
) -> SchemaDelta:
    """The schema evolution implied by an update ``old_base -> new_base``.

    Method definedness is compared on the *optional* signature (a method
    became defined for a class when some member now answers it); class
    identity on the class OID.
    """
    old = class_signatures(old_base, class_method=class_method)
    new = class_signatures(new_base, class_method=class_method)

    added = frozenset(new) - frozenset(old)
    removed = frozenset(old) - frozenset(new)

    methods_defined: dict[Oid, frozenset[MethodSignature]] = {}
    methods_undefined: dict[Oid, frozenset[MethodSignature]] = {}
    membership_gained: dict[Oid, frozenset[Oid]] = {}
    membership_lost: dict[Oid, frozenset[Oid]] = {}
    for class_name in frozenset(old) & frozenset(new):
        before, after = old[class_name], new[class_name]
        defined = after.optional - before.optional
        undefined = before.optional - after.optional
        gained = after.members - before.members
        lost = before.members - after.members
        if defined:
            methods_defined[class_name] = defined
        if undefined:
            methods_undefined[class_name] = undefined
        if gained:
            membership_gained[class_name] = gained
        if lost:
            membership_lost[class_name] = lost
    return SchemaDelta(
        added, removed, methods_defined, methods_undefined,
        membership_gained, membership_lost,
    )
