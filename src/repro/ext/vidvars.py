"""Quantification over VIDs — the extension sketched in Section 6.

    "More expressive power can be gained by allowing to quantify over VIDs
    in addition to OIDs.  However, such an extension must be done carefully
    not to destroy the termination properties of the evaluation process."

This module implements that extension *carefully*:

* a :class:`~repro.core.terms.VersionVar` (concrete syntax ``?W``) ranges
  over the set ``O_V`` of all **existing** versions — it matches VIDs of any
  depth during rule matching;
* version variables are **body-only**.  A head occurrence is rejected up
  front: under stratification condition (a) the head's target would unify
  with every rule head including its own, forcing a strict self-loop — the
  paper's own machinery thus pinpoints the dangerous half of the extension
  (this is a finding of the reproduction, recorded in EXPERIMENTS.md E13);
* condition (d) treats a version variable as potentially denoting a
  ``del``/``mod`` version, so audit rules run strictly after all
  destructive rules;
* because matching only binds version variables to versions already
  materialised, body-only version variables preserve termination; the
  engine additionally offers ``max_version_depth`` as a hard guard.

The flagship use case is the *history audit*: one generic rule that
collects, into the final object, every value a method ever had across all
of the object's versions — something that needs one specialised rule per
version depth without the extension (experiment E13 measures both).
"""

from __future__ import annotations

from repro.core.rules import UpdateProgram
from repro.core.terms import VersionVar
from repro.lang.parser import parse_program

__all__ = ["VersionVar", "uses_version_vars", "audit_history_program",
           "specialised_audit_program"]


def uses_version_vars(program: UpdateProgram) -> bool:
    """True when any rule of ``program`` mentions a version variable."""
    return any(
        isinstance(var, VersionVar) for rule in program for var in rule.variables
    )


def audit_history_program(method: str = "sal", *, ledger: str = "ledger") -> UpdateProgram:
    """One generic audit rule using a version variable.

    ``?W`` ranges over *every* existing version of ``X`` — whatever its
    depth — so a single rule collects the complete history of ``method``
    into a set-valued method of a dedicated ``ledger`` object (inserting
    onto the audited objects themselves would violate version-linearity
    against their own update chains)::

        audit: ins[ledger].hist@X -> S <= ?W.sal -> S, ?W.exists -> X.

    The base must contain the ledger object (``base.add_object(ledger)``).
    """
    return UpdateProgram(
        parse_program(
            f"""
            audit: ins[{ledger}].hist@X -> S <= ?W.{method} -> S, ?W.exists -> X.
            """
        ),
        "audit-history",
    )


def specialised_audit_program(
    method: str, max_depth: int, *, ledger: str = "ledger"
) -> UpdateProgram:
    """The same audit without the extension: one rule per version shape.

    Without quantification over VIDs each possible version term up to
    ``max_depth`` needs its own rule (and the program must be regenerated
    whenever deeper histories appear) — the expressiveness gap E13
    quantifies.  Only ``mod``-chains are enumerated here, matching the E13
    workload; the general case needs ``3^depth`` rules.
    """
    lines = [
        f"a0: ins[{ledger}].hist@X -> S <= X.{method} -> S, X.exists -> X."
    ]
    prefix = "X"
    for level in range(1, max_depth + 1):
        prefix = f"mod({prefix})"
        lines.append(
            f"a{level}: ins[{ledger}].hist@X -> S <= "
            f"{prefix}.{method} -> S, {prefix}.exists -> X."
        )
    return UpdateProgram(parse_program("\n".join(lines)), "audit-specialised")
