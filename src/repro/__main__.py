"""``python -m repro`` — same as the ``repro-updates`` console script."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
