"""Deterministic fault-injection harnesses for tests and chaos tooling.

``repro.testing`` is shipped (not test-only) so downstream users can run
the same crash/chaos drills against their own deployments; see
:mod:`repro.testing.faults` for the filesystem and wire harnesses.
"""

from repro.testing.faults import (
    ChaosProxy,
    FaultSpec,
    FaultyFilesystem,
    InjectedCrash,
    InjectedFault,
    inject_faults,
)

__all__ = [
    "FaultSpec",
    "FaultyFilesystem",
    "InjectedFault",
    "InjectedCrash",
    "inject_faults",
    "ChaosProxy",
]
