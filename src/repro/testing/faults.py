"""Deterministic fault injection for the journal filesystem and the wire.

The crash-recovery property suite needs to kill the process *between any
two bytes* of a journal write and then ask: does the store reload to
exactly the acknowledged prefix?  Real crashes are not schedulable, so
this module fakes them deterministically:

* :class:`FaultyFilesystem` wraps the storage layer's single I/O seam
  (:func:`repro.storage.serialize.swap_filesystem`).  A list of
  :class:`FaultSpec` rules decides, per operation and call count, whether
  to write nothing, a torn prefix, a duplicated or garbled record, raise
  ``ENOSPC``, or complete the write and *then* die — each "death" is an
  :class:`InjectedCrash`, which test code treats as the moment the
  process vanished.
* :class:`ChaosProxy` sits between a wire client and a live server and
  misbehaves on demand: drop every connection mid-request, stall the
  server→client direction (a reader that stops draining), or emit a
  half-written frame and hang up.

Both are deterministic: the same spec list against the same workload
produces the same byte-level outcome, so every crash point in a journal's
life can be enumerated and asserted in CI.
"""

from __future__ import annotations

import asyncio
import errno
import fnmatch
import os
from dataclasses import dataclass
from pathlib import Path

from repro.core.errors import ReproError
from repro.storage import serialize as _serialize

__all__ = [
    "InjectedFault",
    "InjectedCrash",
    "FaultSpec",
    "FaultyFilesystem",
    "inject_faults",
    "ChaosProxy",
]


class InjectedFault(ReproError):
    """Base class of everything the harness throws on purpose."""


class InjectedCrash(InjectedFault):
    """Simulated process death at a filesystem boundary.

    Raised *instead of returning* from an I/O call: whatever bytes the
    spec allowed are on disk, nothing after them is, and — crucially — the
    caller never gets to acknowledge the commit.
    """


_ACTIONS = (
    "crash_before",  # die before touching the file
    "crash_after",   # complete the write durably, then die (ack never sent)
    "torn",          # write the first keep_bytes bytes, then die
    "duplicate",     # write the payload twice (a crash-blind retry), then die
    "corrupt",       # write a garbled payload of the same length, then die
    "enospc",        # the disk is full: fail with OSError(ENOSPC), no crash
)


@dataclass
class FaultSpec:
    """One injection rule: fire ``action`` on the ``at``-th call of ``op``
    whose file name matches ``path_glob``.

    ``op`` is one of the filesystem seam's operations: ``"append"``
    (journal line append), ``"write"`` (atomic whole-file write: snapshots,
    save/compaction, tail repair), ``"replace"`` (the rename half of an
    atomic write), ``"unlink"`` (stale-snapshot cleanup).  ``keep_bytes``
    only applies to ``torn``.
    """

    op: str
    action: str = "crash_before"
    at: int = 0
    keep_bytes: int = 0
    path_glob: str = "*"

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ReproError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {', '.join(_ACTIONS)}"
            )
        if self.op not in ("append", "write", "replace", "unlink"):
            raise ReproError(f"unknown fault op {self.op!r}")


def _garble(text: str) -> str:
    """Same length, same newline structure, definitely not the same CRC."""
    body, newline, rest = text.partition("\n")
    return "#" * len(body) + newline + rest


class FaultyFilesystem(_serialize._Filesystem):
    """The storage seam double: counts calls, fires matching specs.

    ``ops`` records every call as ``(op, file_name)`` so tests can assert
    on the exact I/O sequence; ``fired`` collects the specs that went off.
    """

    def __init__(self, specs: list[FaultSpec]):
        self.specs = list(specs)
        self.ops: list[tuple[str, str]] = []
        self.fired: list[FaultSpec] = []
        self._counts: dict[str, int] = {}

    def _arm(self, op: str, path: Path) -> FaultSpec | None:
        self.ops.append((op, path.name))
        spec_hit = None
        for spec in self.specs:
            if spec in self.fired or spec.op != op:
                continue
            if not fnmatch.fnmatch(path.name, spec.path_glob):
                continue
            key = f"{id(spec)}"
            seen = self._counts.get(key, 0)
            self._counts[key] = seen + 1
            if seen == spec.at and spec_hit is None:
                spec_hit = spec
        if spec_hit is not None:
            self.fired.append(spec_hit)
        return spec_hit

    def _raw_append(self, path: Path, text: str, flush: bool, fsync: bool) -> None:
        super().append_text(path, text, flush=flush, fsync=fsync)

    def append_text(self, path, text, *, flush=True, fsync=False):
        spec = self._arm("append", path)
        if spec is None:
            return self._raw_append(path, text, flush, fsync)
        if spec.action == "crash_before":
            raise InjectedCrash(f"crash before append to {path.name}")
        if spec.action == "enospc":
            raise OSError(errno.ENOSPC, f"no space left on device (injected): {path}")
        if spec.action == "torn":
            self._raw_append(path, text[: spec.keep_bytes], True, fsync)
            raise InjectedCrash(
                f"crash after {spec.keep_bytes} bytes of append to {path.name}"
            )
        if spec.action == "duplicate":
            self._raw_append(path, text + text, True, fsync)
            raise InjectedCrash(f"crash after duplicated append to {path.name}")
        if spec.action == "corrupt":
            self._raw_append(path, _garble(text), True, fsync)
            raise InjectedCrash(f"crash after corrupted append to {path.name}")
        self._raw_append(path, text, True, True)
        raise InjectedCrash(f"crash after durable append to {path.name}")

    def write_text(self, path, text, *, fsync=False):
        spec = self._arm("write", path)
        if spec is None:
            return super().write_text(path, text, fsync=fsync)
        if spec.action == "crash_before":
            raise InjectedCrash(f"crash before write of {path.name}")
        if spec.action == "enospc":
            raise OSError(errno.ENOSPC, f"no space left on device (injected): {path}")
        if spec.action == "torn":
            # die while filling the temp file: the durable name is untouched
            temp = path.with_name(path.name + ".tmp")
            temp.write_text(text[: spec.keep_bytes], encoding="utf-8")
            raise InjectedCrash(
                f"crash after {spec.keep_bytes} bytes of temp write for {path.name}"
            )
        if spec.action == "corrupt":
            super().write_text(path, _garble(text), fsync=fsync)
            raise InjectedCrash(f"crash after corrupted write of {path.name}")
        if spec.action == "duplicate":
            super().write_text(path, text + text, fsync=fsync)
            raise InjectedCrash(f"crash after duplicated write of {path.name}")
        super().write_text(path, text, fsync=True)
        raise InjectedCrash(f"crash after durable write of {path.name}")

    def replace(self, source, target, *, fsync=False):
        spec = self._arm("replace", target)
        if spec is None:
            return super().replace(source, target, fsync=fsync)
        if spec.action == "crash_before":
            raise InjectedCrash(f"crash before rename onto {target.name}")
        super().replace(source, target, fsync=True)
        raise InjectedCrash(f"crash after rename onto {target.name}")

    def unlink(self, path):
        spec = self._arm("unlink", path)
        if spec is None:
            return super().unlink(path)
        if spec.action == "crash_before":
            raise InjectedCrash(f"crash before unlink of {path.name}")
        super().unlink(path)
        raise InjectedCrash(f"crash after unlink of {path.name}")


class inject_faults:
    """Context manager installing a :class:`FaultyFilesystem` over the
    journal I/O seam::

        with inject_faults(FaultSpec("append", "torn", keep_bytes=7)) as fs:
            with pytest.raises(InjectedCrash):
                append_revision(store, journal_dir)
        # the seam is restored even if the block raises
    """

    def __init__(self, *specs: FaultSpec):
        self.filesystem = FaultyFilesystem(list(specs))
        self._previous = None

    def __enter__(self) -> FaultyFilesystem:
        self._previous = _serialize.swap_filesystem(self.filesystem)
        return self.filesystem

    def __exit__(self, *exc_info):
        _serialize.swap_filesystem(self._previous)
        return False


class ChaosProxy:
    """A misbehaving man-in-the-middle for the JSON-lines wire protocol.

    Listens on ``listen_path`` and forwards byte streams to the real
    server at ``target_path`` until told to misbehave:

    * :meth:`drop_connections` — close every active link abruptly
      (connection drop mid-request / mid-subscription);
    * :meth:`stall` — stop forwarding server→client bytes while still
      accepting client→server traffic (a subscriber that stops reading);
    * :meth:`break_with_half_frame` — write a syntactically torn frame to
      each client and hang up (half-written frame on the wire).

    All methods are coroutine-safe on the proxy's event loop.
    """

    def __init__(self, target_path: str, listen_path: str):
        self.target_path = str(target_path)
        self.listen_path = str(listen_path)
        self._server: asyncio.AbstractServer | None = None
        self._links: set[tuple[asyncio.StreamWriter, asyncio.StreamWriter]] = set()
        self._flowing = asyncio.Event()
        self._flowing.set()
        self.connections_seen = 0

    async def start(self) -> "ChaosProxy":
        self._server = await asyncio.start_unix_server(
            self._handle, path=self.listen_path
        )
        return self

    async def _handle(self, client_reader, client_writer):
        try:
            server_reader, server_writer = await asyncio.open_unix_connection(
                self.target_path
            )
        except OSError:
            client_writer.close()
            return
        self.connections_seen += 1
        link = (client_writer, server_writer)
        self._links.add(link)

        async def pump(reader, writer, gated: bool):
            try:
                while True:
                    data = await reader.read(65536)
                    if not data:
                        break
                    if gated:
                        await self._flowing.wait()
                    writer.write(data)
                    await writer.drain()
            except (ConnectionError, asyncio.CancelledError):
                pass
            finally:
                if not writer.is_closing():
                    writer.close()

        await asyncio.gather(
            pump(client_reader, server_writer, gated=False),
            pump(server_reader, client_writer, gated=True),
        )
        self._links.discard(link)

    def stall(self, stalled: bool) -> None:
        """Freeze (or thaw) the server→client direction of every link."""
        if stalled:
            self._flowing.clear()
        else:
            self._flowing.set()

    async def drop_connections(self) -> int:
        """Abruptly close every active link; returns how many were cut."""
        cut = 0
        for client_writer, server_writer in list(self._links):
            for writer in (client_writer, server_writer):
                if not writer.is_closing():
                    writer.close()
            cut += 1
        await asyncio.sleep(0)
        return cut

    async def break_with_half_frame(self) -> int:
        """Send each client a torn frame (no trailing newline), then cut."""
        cut = 0
        for client_writer, server_writer in list(self._links):
            try:
                client_writer.write(b'{"push": "diff", "sid": "torn-')
                await client_writer.drain()
            except ConnectionError:
                pass
            client_writer.close()
            server_writer.close()
            cut += 1
        return cut

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.drop_connections()
        if os.path.exists(self.listen_path):
            os.unlink(self.listen_path)
