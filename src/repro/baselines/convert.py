"""Mapping between object bases and flat relations.

Section 2.1: "methods correspond to predicates".  A fact
``host.m@a1,...,ak -> r`` becomes the row ``m(host, a1, ..., ak, r)`` and
vice versa.  Only OID-hosted facts translate (versions are an
update-process concept; relational baselines know nothing about them), and
``exists`` bookkeeping stays on the object side.
"""

from __future__ import annotations

from repro.core.errors import TermError
from repro.core.facts import EXISTS, Fact
from repro.core.objectbase import ObjectBase
from repro.core.terms import Oid
from repro.datalog.database import Database

__all__ = ["object_base_to_database", "database_to_object_base"]


def object_base_to_database(base: ObjectBase, *, include_exists: bool = False) -> Database:
    """Flatten an object base into relations, one per method name/arity."""
    database = Database()
    for fact in base:
        if fact.method == EXISTS and not include_exists:
            continue
        if not isinstance(fact.host, Oid):
            raise TermError(
                f"only OID-hosted facts translate to relations, got {fact}"
            )
        database.add(fact.method, (fact.host, *fact.args, fact.result))
    return database


def database_to_object_base(
    database: Database, *, ensure_exists: bool = True
) -> ObjectBase:
    """Read relations back as method-applications: the first column is the
    host, the last the result, anything between is arguments."""
    base = ObjectBase()
    for name, row in database:
        if len(row) < 2:
            raise TermError(
                f"relation {name}/{len(row)} is too narrow to be a method "
                f"(needs at least host and result columns)"
            )
        host, *middle, result = row
        base.add(Fact(host, name, tuple(middle), result))
    if ensure_exists:
        base.ensure_exists()
    return base
