"""The "no control" strawman: all updates at one time-step.

Section 2.4 argues that without the control encoded in version identities,
"firing employees before raising salaries could have led to a different
unintended updated object-base".  This module makes that concrete: it
evaluates an :class:`~repro.core.rules.UpdateProgram` under a *single
time-step* semantics —

* every version-id-term is flattened to the object it denotes (``mod(E)``
  reads as plain ``E``: there are no versions);
* rule bodies read the **original** object base throughout — no staging,
  no intermediate states;
* update-terms in bodies test the *pending* update sets (the production-
  rule reading: "has this update been requested?");
* rules fire to a fixpoint of the pending sets, then all pending inserts,
  deletes and modifications are applied simultaneously (deletes win over
  modifications of the same fact; see :func:`apply_pending`).

On the Figure 2 variant with bob at $4100 this fires bob (4100 > boss's
original 4000) even though after the raise he earns less than his boss —
the exact anomaly the paper's versioning prevents (experiment E6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.atoms import Literal, UpdateAtom, VersionAtom
from repro.core.errors import EvaluationError, EvaluationLimitError
from repro.core.facts import EXISTS, Fact
from repro.core.grounding import match_rule
from repro.core.objectbase import ObjectBase
from repro.core.rules import UpdateProgram, UpdateRule
from repro.core.terms import Oid, Term, UpdateKind, VersionId

__all__ = ["PendingSets", "NaiveResult", "naive_one_step_update", "flatten_program"]

Application = tuple[Oid, str, tuple[Oid, ...], Oid]


@dataclass
class PendingSets:
    """The requested updates of the single time-step."""

    inserts: set[Application] = field(default_factory=set)
    deletes: set[Application] = field(default_factory=set)
    modifies: dict[Application, set[Oid]] = field(default_factory=dict)

    def size(self) -> int:
        return (
            len(self.inserts)
            + len(self.deletes)
            + sum(len(v) for v in self.modifies.values())
        )


@dataclass
class NaiveResult:
    """Outcome of a one-time-step update."""

    new_base: ObjectBase
    pending: PendingSets
    iterations: int


def flatten_term(term: Term) -> Term:
    """Strip every version functor: ``ins(mod(E)) -> E`` — the "no
    versions" reading."""
    while isinstance(term, VersionId):
        term = term.base
    return term


def _flatten_atom(atom):
    if isinstance(atom, VersionAtom):
        return VersionAtom(flatten_term(atom.host), atom.method, atom.args, atom.result)
    if isinstance(atom, UpdateAtom):
        return UpdateAtom(
            atom.kind,
            flatten_term(atom.target),
            atom.method,
            atom.args,
            atom.result,
            atom.result2,
            atom.delete_all,
        )
    return atom


def flatten_program(program: UpdateProgram) -> UpdateProgram:
    """The version-free projection of an update-program."""
    rules = [
        UpdateRule(
            _flatten_atom(rule.head),
            tuple(Literal(_flatten_atom(lit.atom), lit.positive) for lit in rule.body),
            rule.name,
        )
        for rule in program
    ]
    return UpdateProgram(rules, f"{program.name}-flat")


def naive_one_step_update(
    program: UpdateProgram,
    base: ObjectBase,
    *,
    max_iterations: int = 1_000,
) -> NaiveResult:
    """Run ``program`` under the single-time-step semantics.

    The rule matcher of the core engine is reused for the *version-term*
    parts of bodies (they read the original base); body *update-terms* are
    intercepted and tested against the pending sets.
    """
    flat = flatten_program(program)
    working = base.copy()
    working.ensure_exists()

    pending = PendingSets()
    iterations = 0
    while True:
        iterations += 1
        if iterations > max_iterations:
            raise EvaluationLimitError(0, max_iterations)
        before = pending.size()
        for rule in flat:
            _fire_rule(rule, working, pending)
        if pending.size() == before:
            break

    return NaiveResult(apply_pending(working, pending), pending, iterations)


def _split_body(rule: UpdateRule):
    """Version-terms and built-ins go to the matcher; update-terms are
    pending-set tests."""
    matcher_literals = []
    pending_literals = []
    for literal in rule.body:
        if isinstance(literal.atom, UpdateAtom):
            pending_literals.append(literal)
        else:
            matcher_literals.append(literal)
    return tuple(matcher_literals), tuple(pending_literals)


def _fire_rule(rule: UpdateRule, base: ObjectBase, pending: PendingSets) -> None:
    matcher_literals, pending_literals = _split_body(rule)
    probe = UpdateRule(rule.head, matcher_literals, rule.name)
    for binding in match_rule(probe, base):
        if not all(
            _pending_literal_true(lit.substitute(binding), pending)
            for lit in pending_literals
        ):
            continue
        head = rule.head.substitute(binding)
        if not head.is_ground():
            raise EvaluationError(f"rule {rule.name!r} is unsafe (non-ground head)")
        _record_head(head, base, pending)


def _pending_literal_true(literal: Literal, pending: PendingSets) -> bool:
    atom = literal.atom
    assert isinstance(atom, UpdateAtom) and not atom.delete_all
    host = flatten_term(atom.target)
    application: Application = (host, atom.method, atom.args, atom.result)  # type: ignore[assignment]
    if atom.kind is UpdateKind.INSERT:
        value = application in pending.inserts
    elif atom.kind is UpdateKind.DELETE:
        value = application in pending.deletes
    else:
        value = atom.result2 in pending.modifies.get(application, set())
    return value if literal.positive else not value


def _record_head(head: UpdateAtom, base: ObjectBase, pending: PendingSets) -> None:
    host = flatten_term(head.target)
    if not isinstance(host, Oid):
        raise EvaluationError(f"non-ground update target {head.target}")

    if head.delete_all:
        for fact in base.method_applications(host):
            pending.deletes.add((host, fact.method, fact.args, fact.result))
        return

    application: Application = (host, head.method, head.args, head.result)  # type: ignore[assignment]
    old_fact = Fact(host, head.method, head.args, head.result)  # type: ignore[arg-type]
    if head.kind is UpdateKind.INSERT:
        pending.inserts.add(application)
    elif head.kind is UpdateKind.DELETE:
        if old_fact in base:  # a delete needs something to delete
            pending.deletes.add(application)
    else:
        if old_fact in base:
            pending.modifies.setdefault(application, set()).add(head.result2)  # type: ignore[arg-type]


def apply_pending(base: ObjectBase, pending: PendingSets) -> ObjectBase:
    """Apply all pending updates simultaneously.

    Conflict policy (documented, tested): deletes beat modifications of the
    same application; modifications remove the old value and add every
    requested new value; inserts are added last.  ``exists`` facts are
    regenerated; objects losing all applications vanish (mirroring
    Section 5's convention so results stay comparable with the core engine).
    """
    result = ObjectBase()
    for fact in base:
        if fact.method == EXISTS:
            continue
        application = (fact.host, fact.method, fact.args, fact.result)
        if application in pending.deletes:
            continue
        if application in pending.modifies:
            continue
        result.add(fact)
    for (host, method, args, _old), new_values in pending.modifies.items():
        application = (host, method, args, _old)
        if application in pending.deletes:
            continue
        for new_value in new_values:
            result.add(Fact(host, method, args, new_value))
    for host, method, args, value in pending.inserts:
        result.add(Fact(host, method, args, value))
    result.ensure_exists()
    return result
