"""RDL1-style explicit control — the third §2.4 comparison point.

    "A different way to control evaluation is pointed out in RDL1 [dMS88]:
    here explicit (user defined) control is achieved by adding so called
    Production Compilation Networks to the rule-programs, which allow
    similar control patterns as Petri-Nets."

This module models that style: update rules (insert/delete heads over flat
relations, shared with the Logres baseline) are wired into an explicit
**control expression** the user writes —

* ``Once(rules)``   — fire the rules simultaneously, apply, done;
* ``Saturate(rules)`` — fire-and-apply until nothing changes;
* ``Seq(steps)``    — run sub-controls left to right;
* ``While(condition_predicate, step)`` — repeat the step while some row of
  the given predicate exists (the Petri-net-style token test).

Together with Logres modules (order as control) and the paper's approach
(control derived from version terms) this completes the §2.4 spectrum:
experiment E15 runs the enterprise update under a hand-written RDL-style
network and under two subtly wrong networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.core.errors import EvaluationLimitError, ProgramError
from repro.baselines.logres import LogresRule
from repro.datalog.database import Database, Row
from repro.datalog.evaluation import match_datalog_rule

__all__ = ["Once", "Saturate", "Seq", "While", "RdlProgram"]


@dataclass(frozen=True)
class Once:
    """Fire all rules against the current database, apply simultaneously
    (deletions win), stop."""

    rules: tuple[LogresRule, ...]
    name: str = "once"


@dataclass(frozen=True)
class Saturate:
    """Repeat :class:`Once` until the database stops changing."""

    rules: tuple[LogresRule, ...]
    name: str = "saturate"


@dataclass(frozen=True)
class Seq:
    """Run the sub-steps in order — the network's sequencing arc."""

    steps: tuple["ControlExpr", ...]
    name: str = "seq"


@dataclass(frozen=True)
class While:
    """Repeat ``step`` while relation ``condition`` is non-empty.

    ``condition`` is ``(predicate, arity)`` — the token place of the
    Petri-net reading.  The body is expected to consume the tokens;
    ``max_rounds`` guards against networks that never do.
    """

    condition: tuple[str, int]
    step: "ControlExpr"
    max_rounds: int = 10_000
    name: str = "while"


ControlExpr = Union[Once, Saturate, Seq, While]


class RdlProgram:
    """Rules plus an explicit control expression."""

    def __init__(self, control: ControlExpr, *, max_iterations: int = 10_000):
        self.control = control
        self.max_iterations = max_iterations
        _validate(control)

    def run(self, edb: Database) -> Database:
        """Execute the network; the input database is not mutated."""
        database = edb.copy()
        self._run(self.control, database)
        return database

    # -- execution ---------------------------------------------------------
    def _run(self, node: ControlExpr, database: Database) -> None:
        if isinstance(node, Once):
            _fire_once(node.rules, database)
        elif isinstance(node, Saturate):
            for _ in range(self.max_iterations):
                if not _fire_once(node.rules, database):
                    return
            raise EvaluationLimitError(0, self.max_iterations)
        elif isinstance(node, Seq):
            for step in node.steps:
                self._run(step, database)
        elif isinstance(node, While):
            predicate, arity = node.condition
            for _ in range(node.max_rounds):
                if not database.rows(predicate, arity):
                    return
                self._run(node.step, database)
            raise EvaluationLimitError(0, node.max_rounds)
        else:  # pragma: no cover - exhaustive
            raise ProgramError(f"unknown control node {node!r}")


def _validate(node: ControlExpr) -> None:
    if isinstance(node, (Once, Saturate)):
        if not node.rules:
            raise ProgramError(f"{node.name}: a rule step needs rules")
        for rule in node.rules:
            rule.as_datalog().check_safety()
    elif isinstance(node, Seq):
        if not node.steps:
            raise ProgramError("seq: needs at least one step")
        for step in node.steps:
            _validate(step)
    elif isinstance(node, While):
        _validate(node.step)
    else:
        raise ProgramError(f"not a control expression: {node!r}")


def _fire_once(rules: Sequence[LogresRule], database: Database) -> bool:
    inserts: set[tuple[str, Row]] = set()
    deletes: set[tuple[str, Row]] = set()
    for rule in rules:
        sink = inserts if rule.insert else deletes
        for binding in match_datalog_rule(rule.as_datalog(), database):
            head = rule.head.substitute(binding)
            sink.add((head.name, head.to_tuple()))
    changed = False
    for name, row in deletes:
        changed |= database.remove(name, row)
    for name, row in inserts - deletes:  # deletions win
        changed |= database.add(name, row)
    return changed
