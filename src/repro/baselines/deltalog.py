"""Datalog with deletions, non-inflationary semantics — [AV91].

    "In [AV91] various extensions of Datalog including deletions are
    investigated" (§1); the paper's comparison section relies on that line
    of work for the expressiveness/termination backdrop.

The semantics implemented here is the *non-inflationary* fixpoint of
Datalog¬ with signed heads: at every step **all** rules fire against the
current database simultaneously; the derived ``+p`` rows are added and the
``-p`` rows removed (deletions win on conflict).  Because the database can
shrink, the sequence of states need not converge — it can enter a cycle.
[AV91] treats a non-converging computation as undefined; we *detect* the
cycle (state hashing) and raise :class:`NonTerminationError` with the cycle
length, which experiment E15's termination contrast relies on: the paper's
versioned language terminates structurally on every safe program, while
this semantics admits two-line oscillators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import EvaluationError
from repro.baselines.logres import LogresRule
from repro.datalog.database import Database, Row
from repro.datalog.evaluation import match_datalog_rule

__all__ = ["NonTerminationError", "DeltalogProgram"]


class NonTerminationError(EvaluationError):
    """The non-inflationary computation entered a state cycle.

    Attributes
    ----------
    steps:
        Number of steps taken before the repeated state was seen.
    cycle_length:
        Period of the oscillation (1 would be a fixpoint, so >= 2 here).
    """

    def __init__(self, steps: int, cycle_length: int):
        self.steps = steps
        self.cycle_length = cycle_length
        super().__init__(
            f"non-inflationary evaluation oscillates with period "
            f"{cycle_length} (detected after {steps} steps); the program "
            f"has no fixpoint on this database"
        )


@dataclass(frozen=True)
class _State:
    """Hashable snapshot of a database for cycle detection."""

    rows: frozenset[tuple[str, Row]]

    @classmethod
    def of(cls, database: Database) -> "_State":
        return cls(frozenset((name, row) for name, row in database))


class DeltalogProgram:
    """Signed-head Datalog rules under non-inflationary semantics."""

    def __init__(self, rules: Iterable[LogresRule], name: str = "deltalog"):
        self.rules = tuple(rules)
        self.name = name
        for rule in self.rules:
            rule.as_datalog().check_safety()

    def run(self, edb: Database, *, max_steps: int = 10_000) -> Database:
        """Iterate to the fixpoint; raise :class:`NonTerminationError` on a
        state cycle, ``EvaluationError`` when ``max_steps`` is exhausted
        without either outcome (astronomically long orbits)."""
        database = edb.copy()
        seen: dict[_State, int] = {_State.of(database): 0}
        for step in range(1, max_steps + 1):
            changed = self._step(database)
            if not changed:
                return database
            state = _State.of(database)
            if state in seen:
                raise NonTerminationError(step, step - seen[state])
            seen[state] = step
        raise EvaluationError(
            f"no fixpoint and no cycle within {max_steps} steps"
        )

    def _step(self, database: Database) -> bool:
        inserts: set[tuple[str, Row]] = set()
        deletes: set[tuple[str, Row]] = set()
        for rule in self.rules:
            sink = inserts if rule.insert else deletes
            for binding in match_datalog_rule(rule.as_datalog(), database):
                head = rule.head.substitute(binding)
                sink.add((head.name, head.to_tuple()))
        changed = False
        for name, row in deletes:
            changed |= database.remove(name, row)
        for name, row in inserts - deletes:  # deletions win
            changed |= database.add(name, row)
        return changed
