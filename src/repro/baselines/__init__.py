"""Baselines for the comparative claims of Section 2.4.

The paper argues that updates need *control* (``update = logic + control``)
and contrasts three ways of getting it:

* **none** — all updates happen at one "time-step".
  :mod:`repro.baselines.naive` implements that semantics; experiment E6
  shows it firing the wrong employee in the Figure 2 variant.
* **manual module ordering** (Logres [CCCR+90]) — rules with deletions in
  their heads, grouped into modules the *user* must order.
  :mod:`repro.baselines.logres` implements module semantics on the Datalog
  substrate; experiment E11 shows a wrong order producing the unintended
  base while the paper's version-stratification derives the order
  automatically.
* **manual control networks** (RDL1 [dMS88]) — explicit user-written
  control expressions (sequence / saturate / while) over the rules.
  :mod:`repro.baselines.rdl`.
* **inheritance with overriding** (LOCO [LVVS90]) — updates performed by
  introducing new rule-carrying instances into an isa-hierarchy, one per
  updated object.  :mod:`repro.baselines.loco`.
* **non-inflationary Datalog with deletions** ([AV91]) — the fixpoint may
  not exist at all; :mod:`repro.baselines.deltalog` detects the
  oscillation the paper's versioned language excludes structurally.
* **version identities** — the paper's approach (:mod:`repro.core`).

:mod:`repro.baselines.convert` maps object bases to flat relations and back
("methods correspond to predicates", Section 2.1).
"""

from repro.baselines.convert import database_to_object_base, object_base_to_database
from repro.baselines.deltalog import DeltalogProgram, NonTerminationError
from repro.baselines.loco import LocoHierarchy, LocoObject
from repro.baselines.logres import LogresModule, LogresProgram, LogresRule
from repro.baselines.naive import NaiveResult, naive_one_step_update
from repro.baselines.rdl import Once, RdlProgram, Saturate, Seq, While

__all__ = [
    "object_base_to_database",
    "database_to_object_base",
    "naive_one_step_update",
    "NaiveResult",
    "LogresRule",
    "LogresModule",
    "LogresProgram",
    "RdlProgram",
    "Once",
    "Saturate",
    "Seq",
    "While",
    "DeltalogProgram",
    "NonTerminationError",
    "LocoObject",
    "LocoHierarchy",
]
