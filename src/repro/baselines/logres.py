"""Logres-style update modules (Section 2.4 comparison, [CCCR+90]).

Logres is a typed extension of Datalog where updates are expressed "by using
rules with deletions in the head"; rules are grouped into **modules** with
either stratified or inflationary semantics, and control is exerted by the
*user-specified order* in which modules execute — the "flexible, however
'manual' means for control" the paper contrasts with its automatic
version-derived stratification (experiment E11).

Semantics implemented here (documented choices where [CCCR+90] leaves
detail out):

* a module's rules have heads ``+p(...)`` (insert) or ``-p(...)`` (delete);
* one module step derives all insertions and deletions against the current
  database and applies them simultaneously, **deletions winning** over
  insertions of the same row;
* ``inflationary`` modules repeat that step until the database stops
  changing (a cycle guard raises after ``max_iterations``);
* ``stratified`` modules first stratify their rules by predicate negation
  and run each stratum's step-loop in order;
* modules execute in program order, each reading its predecessor's output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.errors import EvaluationLimitError, ProgramError
from repro.datalog.ast import DatalogLiteral, DatalogProgram, DatalogRule, PredicateAtom
from repro.datalog.database import Database, Row
from repro.datalog.evaluation import match_datalog_rule
from repro.datalog.stratify import stratify_datalog

__all__ = ["LogresRule", "LogresModule", "LogresProgram", "enterprise_modules"]


@dataclass(frozen=True)
class LogresRule:
    """A Datalog rule whose head inserts (``+``) or deletes (``-``)."""

    head: PredicateAtom
    body: tuple[DatalogLiteral, ...]
    insert: bool = True
    name: str = ""

    def as_datalog(self) -> DatalogRule:
        """The underlying Datalog rule (polarity dropped) — used for safety
        checking and stratification."""
        return DatalogRule(self.head, self.body, self.name)

    def __str__(self) -> str:
        sign = "+" if self.insert else "-"
        body = ", ".join(str(b) for b in self.body)
        return f"{sign}{self.head} :- {body}."


@dataclass(frozen=True)
class LogresModule:
    """A named group of update rules with a module-level semantics."""

    name: str
    rules: tuple[LogresRule, ...]
    semantics: str = "stratified"  # or "inflationary"

    def __post_init__(self) -> None:
        if self.semantics not in ("stratified", "inflationary"):
            raise ProgramError(
                f"module {self.name!r}: semantics must be 'stratified' or "
                f"'inflationary', got {self.semantics!r}"
            )
        for rule in self.rules:
            rule.as_datalog().check_safety()


class LogresProgram:
    """An ordered sequence of modules — order is the user's control knob."""

    def __init__(self, modules: Iterable[LogresModule]):
        self.modules: tuple[LogresModule, ...] = tuple(modules)
        seen: set[str] = set()
        for module in self.modules:
            if module.name in seen:
                raise ProgramError(f"duplicate module name {module.name!r}")
            seen.add(module.name)

    def reordered(self, order: Sequence[str]) -> "LogresProgram":
        """The same modules in a different execution order (E11 explores
        how order changes the result)."""
        by_name = {module.name: module for module in self.modules}
        if sorted(order) != sorted(by_name):
            raise ProgramError(
                f"reorder needs exactly the module names {sorted(by_name)}"
            )
        return LogresProgram([by_name[name] for name in order])

    def run(self, edb: Database, *, max_iterations: int = 10_000) -> Database:
        """Execute the modules in order; the input database is not mutated."""
        database = edb.copy()
        for module in self.modules:
            _run_module(module, database, max_iterations)
        return database


def _run_module(module: LogresModule, database: Database, max_iterations: int) -> None:
    if module.semantics == "inflationary":
        _step_loop(list(module.rules), database, max_iterations, module.name)
        return
    # stratified: group rules by the stratum of their head predicate
    datalog_view = DatalogProgram(
        [rule.as_datalog() for rule in module.rules], module.name
    )
    stratification = stratify_datalog(datalog_view)
    by_name = {rule.name: rule for rule in module.rules}
    for stratum in stratification:
        stratum_rules = [by_name[rule.name] for rule in stratum]
        _step_loop(stratum_rules, database, max_iterations, module.name)


def _step_loop(
    rules: list[LogresRule],
    database: Database,
    max_iterations: int,
    module_name: str,
) -> None:
    for _iteration in range(max_iterations):
        inserts: set[tuple[str, Row]] = set()
        deletes: set[tuple[str, Row]] = set()
        for rule in rules:
            sink = inserts if rule.insert else deletes
            for binding in match_datalog_rule(rule.as_datalog(), database):
                head = rule.head.substitute(binding)
                sink.add((head.name, head.to_tuple()))
        changed = False
        for name, row in deletes:
            changed |= database.remove(name, row)
        for name, row in inserts - deletes:  # deletions win
            changed |= database.add(name, row)
        if not changed:
            return
    raise EvaluationLimitError(0, max_iterations)


def enterprise_modules(*, hpe_threshold: int = 4500) -> LogresProgram:
    """The paper's enterprise update (Section 2.3) as Logres modules.

    Modules ``raise`` → ``fire`` → ``hpe``; the user must supply that order.
    Experiment E11 runs both this order (matching the versioned engine) and
    ``fire`` → ``raise`` → ``hpe`` (the unintended base).

    The ``raise`` module shows the manual-control tax in miniature: the
    rules need an explicit ``raised(E)`` guard — without it they would
    re-raise the already-raised salary forever, the very update-loop the
    paper's OID-only variable binding rules out by construction.
    """
    from repro.core.atoms import BuiltinAtom
    from repro.core.exprs import BinOp
    from repro.core.terms import Oid, Var

    def atom(name: str, *parts) -> PredicateAtom:
        terms = tuple(
            Var(p) if isinstance(p, str) and p[0].isupper() else Oid(p)
            for p in parts
        )
        return PredicateAtom(name, terms)

    L = DatalogLiteral
    S, S2, SE, SB = Var("S"), Var("S2"), Var("SE"), Var("SB")

    raise_module = LogresModule("raise", (
        LogresRule(atom("newsal", "E", "S2"),
                   (L(atom("isa", "E", "empl")), L(atom("pos", "E", "mgr")),
                    L(atom("sal", "E", "S")), L(atom("raised", "E"), False),
                    L(BuiltinAtom("=", S2, BinOp("+", BinOp("*", S, Oid(1.1)), Oid(200))))),
                   True, "r_mgr"),
        LogresRule(atom("newsal", "E", "S2"),
                   (L(atom("isa", "E", "empl")), L(atom("pos", "E", "mgr"), False),
                    L(atom("sal", "E", "S")), L(atom("raised", "E"), False),
                    L(BuiltinAtom("=", S2, BinOp("*", S, Oid(1.1))))),
                   True, "r_emp"),
        LogresRule(atom("raised", "E"),
                   (L(atom("isa", "E", "empl")), L(atom("sal", "E", "S"))),
                   True, "mark"),
        LogresRule(atom("sal", "E", "S"),
                   (L(atom("sal", "E", "S")), L(atom("newsal", "E", "S2")),
                    L(BuiltinAtom("!=", S, S2))),
                   False, "drop_old"),
        LogresRule(atom("sal", "E", "S2"), (L(atom("newsal", "E", "S2")),),
                   True, "add_new"),
    ), "inflationary")

    fire_module = LogresModule("fire", (
        LogresRule(atom("fired", "E"),
                   (L(atom("isa", "E", "empl")), L(atom("boss", "E", "B")),
                    L(atom("sal", "E", "SE")), L(atom("sal", "B", "SB")),
                    L(BuiltinAtom(">", SE, SB))),
                   True, "spot"),
        LogresRule(atom("isa", "E", "C"),
                   (L(atom("fired", "E")), L(atom("isa", "E", "C"))), False, "del_isa"),
        LogresRule(atom("sal", "E", "S"),
                   (L(atom("fired", "E")), L(atom("sal", "E", "S"))), False, "del_sal"),
        LogresRule(atom("boss", "E", "B"),
                   (L(atom("fired", "E")), L(atom("boss", "E", "B"))), False, "del_boss"),
        LogresRule(atom("pos", "E", "P"),
                   (L(atom("fired", "E")), L(atom("pos", "E", "P"))), False, "del_pos"),
    ), "inflationary")

    hpe_module = LogresModule("hpe", (
        LogresRule(atom("isa", "E", "hpe"),
                   (L(atom("isa", "E", "empl")), L(atom("sal", "E", "S")),
                    L(BuiltinAtom(">", S, Oid(hpe_threshold)))),
                   True, "classify"),
    ), "inflationary")

    return LogresProgram([raise_module, fire_module, hpe_module])
