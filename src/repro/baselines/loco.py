"""LOCO-style updates: inheritance with overriding — the last §2.4 system.

    "LOCO is based on ordered logic [LSV90]: a set of Datalog-like rules
    (allowing negation in rule-heads) may be ordered in a isa-hierarchy to
    allow inheritance.  Updates are done by making the new rules an
    instance of the to-be-updated object; applying inheritance with
    overriding yields the instance as updated object."  And §2.4: "updates
    cannot be defined by rules; instead again in a 'manual' way new rules
    have to be introduced into the isa-hierarchy."

This module implements that mechanism in miniature:

* a :class:`LocoObject` carries signed rules (``+p(...)``/``-p(...)``,
  reusing :class:`~repro.baselines.logres.LogresRule`) and ``isa`` parents;
* querying an object evaluates its own rules *and* the inherited ones,
  with **overriding**: if a strictly more specific level of the hierarchy
  concludes anything about a predicate, every less specific conclusion for
  that predicate is shadowed; explicit negative conclusions (``-p``)
  additionally defeat equally-derived positives at less specific levels;
* :meth:`LocoHierarchy.update_instance` performs LOCO's update move —
  create a fresh instance object holding the "update rules" and read the
  updated state off the instance.

Experiment E16 contrasts this with the paper's approach: the salary raise
needs one *hand-made instance per updated object* here, while the
versioned language expresses it as a single rule over all employees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import EvaluationLimitError, ProgramError
from repro.baselines.logres import LogresRule
from repro.datalog.database import Database, Row
from repro.datalog.evaluation import match_datalog_rule

__all__ = ["LocoObject", "LocoHierarchy"]


@dataclass(frozen=True)
class LocoObject:
    """One node of the isa-hierarchy: a name, parents, and signed rules."""

    name: str
    parents: tuple[str, ...] = ()
    rules: tuple[LogresRule, ...] = ()

    def __post_init__(self) -> None:
        for rule in self.rules:
            rule.as_datalog().check_safety()


class LocoHierarchy:
    """An acyclic isa-hierarchy of rule-carrying objects."""

    def __init__(self, objects: list[LocoObject] | tuple[LocoObject, ...] = ()):
        self._objects: dict[str, LocoObject] = {}
        for obj in objects:
            self.add(obj)

    def add(self, obj: LocoObject) -> LocoObject:
        if obj.name in self._objects:
            raise ProgramError(f"object {obj.name!r} already in the hierarchy")
        for parent in obj.parents:
            if parent not in self._objects:
                raise ProgramError(
                    f"object {obj.name!r}: unknown parent {parent!r}"
                )
        self._objects[obj.name] = obj
        return obj

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    # -- inheritance -------------------------------------------------------
    def levels(self, name: str) -> list[list[LocoObject]]:
        """The specificity levels of ``name``: the object itself, then its
        parents, grandparents, ... (breadth-first, deduplicated)."""
        if name not in self._objects:
            raise ProgramError(f"unknown object {name!r}")
        seen = {name}
        frontier = [self._objects[name]]
        result = [frontier]
        while True:
            next_frontier: list[LocoObject] = []
            for obj in frontier:
                for parent in obj.parents:
                    if parent not in seen:
                        seen.add(parent)
                        next_frontier.append(self._objects[parent])
            if not next_frontier:
                return result
            result.append(next_frontier)
            frontier = next_frontier

    # -- semantics -----------------------------------------------------------
    def state_of(
        self, name: str, edb: Database | None = None, *, max_iterations: int = 1_000
    ) -> Database:
        """The derived state of ``name`` under inheritance with overriding.

        Levels are evaluated most-specific first.  Within a level, rules
        run to an inflationary fixpoint over (edb + conclusions so far);
        negative conclusions remove rows.  A predicate concluded at a more
        specific level **overrides**: less specific levels may no longer
        add rows for it.
        """
        database = edb.copy() if edb is not None else Database()
        frozen_predicates: set[tuple[str, int]] = set()
        for level in self.levels(name):
            rules = [rule for obj in level for rule in obj.rules]
            concluded = self._saturate(
                rules, database, frozen_predicates, max_iterations
            )
            frozen_predicates |= concluded
        return database

    @staticmethod
    def _saturate(
        rules: list[LogresRule],
        database: Database,
        frozen: set[tuple[str, int]],
        max_iterations: int,
    ) -> set[tuple[str, int]]:
        concluded: set[tuple[str, int]] = set()
        for _ in range(max_iterations):
            inserts: set[tuple[str, Row]] = set()
            deletes: set[tuple[str, Row]] = set()
            for rule in rules:
                key = rule.head.key
                if key in frozen:
                    continue  # overridden by a more specific level
                sink = inserts if rule.insert else deletes
                for binding in match_datalog_rule(rule.as_datalog(), database):
                    head = rule.head.substitute(binding)
                    sink.add((head.name, head.to_tuple()))
            changed = False
            for pred, row in deletes:
                concluded.add((pred, len(row)))
                changed |= database.remove(pred, row)
            for pred, row in inserts - deletes:
                concluded.add((pred, len(row)))
                changed |= database.add(pred, row)
            if not changed:
                return concluded
        raise EvaluationLimitError(0, max_iterations)

    # -- LOCO's update move ---------------------------------------------------
    def update_instance(
        self, target: str, update_rules: tuple[LogresRule, ...], *, name: str = ""
    ) -> LocoObject:
        """Perform an update the LOCO way: introduce a new instance below
        ``target`` carrying the update rules.  The *instance* is the
        updated object; the original is untouched — and every object to be
        updated needs its own hand-made instance (the §2.4 critique)."""
        instance_name = name or f"{target}'"
        return self.add(LocoObject(instance_name, (target,), update_rules))
