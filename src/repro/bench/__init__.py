"""Benchmark support: paper-style tables and small timing helpers."""

from repro.bench.harness import ExperimentTable, time_callable

__all__ = ["ExperimentTable", "time_callable"]
