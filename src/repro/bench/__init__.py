"""Benchmark support: paper-style tables, timing helpers, and the
machine-readable P1 scaling sweep (``python -m repro bench``)."""

from repro.bench.harness import ExperimentTable, time_callable
from repro.bench.sweep import run_p1_sweep

__all__ = ["ExperimentTable", "time_callable", "run_p1_sweep"]
