"""Machine-readable performance sweeps (``python -m repro bench``).

Two sweeps, each writing a JSON document so the performance trajectory is
comparable across PRs (``benchmarks/run_bench.py`` is a thin wrapper):

* **P1 base-size sweep** (default, ``BENCH_PR1.json``) — the full enterprise
  update program against generated bases of increasing size, once per
  evaluation path (semi-naive delta-driven vs the naive reference).
* **Store sweep** (``--store``, ``BENCH_PR2.json``) — the versioned store's
  two claims: (a) a 200-revision delta chain of the P1 workload keeps ≥ 5×
  less memory than the full-copy chain (tracemalloc bytes, plus the
  representation-independent stored-entry count), and (b) repeated
  ``store.apply`` with the engine's cached ``CompiledProgram`` beats a cold
  ``UpdateEngine.apply`` that redoes the static analysis (safety,
  stratification, join plans) every time.
* **Query sweep** (``--queries``, ``BENCH_PR3.json``) — the read-heavy
  serving workload: a store absorbs small update transactions while a mix
  of conjunctive queries is read back many times per revision.  Three
  serving paths are timed over identical update/read traces: per-call
  ``query_literals`` (the PR 2 path — full re-join on every read),
  ``PreparedQuery.run`` (compile-once + secondary-index access paths), and
  ``VersionedStore.query`` (prepared + per-revision memoization with
  delta-driven invalidation/carry).  A differential check asserts all
  paths agree with the dynamic reference matcher at every revision.
* **Serve sweep** (``--serve``, ``BENCH_PR4.json``) — the concurrent
  serving subsystem: N clients hold live subscriptions to the read-query
  mix while update transactions commit.  The *served* path keeps every
  client current by push (per commit: one signature check per query,
  shared re-evaluation only for affected queries, answer diffs out); the
  *naive* baseline re-evaluates every query for every client on every
  commit — what polling against the PR 2 store would cost.  Both paths
  are measured as up-to-date client query states per second; the headline
  ratio (acceptance floor: >= 3x) is guarded in CI.  A wire section
  additionally times the asyncio JSON-lines transport end-to-end
  (concurrent subscribers on a unix socket, commit-to-push wall time,
  request round-trip latency).
* **Joins sweep** (``--joins``, ``BENCH_PR7.json``) — the compiled
  (codegen'd, set-at-a-time) execution path against the interpreted
  planned walker and the naive dynamic-ordering reference.  Two
  workloads: the P1 enterprise program over the standard size sweep, and
  a wide-join synthetic (a four-way chain join plus an arithmetic
  filter) whose cost is all in the join itself.  A differential check
  asserts all three paths produce the same result base at every size.

* **Cluster sweep** (``--cluster``, ``BENCH_PR10.json``) — the sharded
  deployment: one enterprise base hash-partitioned across 1/2/4/8 served
  shards behind the ``cluster:`` router, the same targeted-raise churn
  loop with scatter reads at every count.  Headlines (both guarded in
  CI): aggregate read scaling at the largest count over one shard
  (locality — per-commit apply and memo recompute follow the written
  shard's size) and routed-over-standalone single-shard commit
  throughput (the router must cost < 10 %).  A differential replay
  against a ``memory:`` store checks the merged scatter answers at every
  shard count.

* **Observability sweep** (``--obs``, ``BENCH_PR9.json``) — the cost of
  the metrics registry itself: the P1[400] apply and a scaled served
  subscription run, each timed with the registry forced off and forced
  on.  The acceptance bound (enabled within 5 % of disabled on both) is
  guarded in CI by ``benchmarks/check_regression.py``.

Every sweep records its headline numbers as ``bench_*`` gauges through
the observability registry (``repro.obs``) and stamps that slice into
the written document as a ``metrics`` section, then ends by refreshing
``BENCH_TRAJECTORY.json`` — the unified, machine-readable
headline-metric trajectory across all committed ``BENCH_PR*.json``
documents (also: ``--trajectory`` rebuilds it alone).
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
import tracemalloc
from pathlib import Path

from repro.core.engine import UpdateEngine
from repro.workloads.enterprise import (
    enterprise_base,
    enterprise_update_program,
    paper_example_base,
    targeted_raise_program,
)

__all__ = [
    "run_p1_sweep",
    "run_store_sweep",
    "run_query_sweep",
    "run_serve_sweep",
    "run_soak_sweep",
    "run_joins_sweep",
    "run_replication_sweep",
    "run_obs_sweep",
    "run_cluster_sweep",
    "build_trajectory",
    "main",
]

DEFAULT_SIZES = (25, 100, 400)
DEFAULT_REPEATS = 5
DEFAULT_OUT = "BENCH_PR1.json"
DEFAULT_STORE_OUT = "BENCH_PR2.json"
DEFAULT_STORE_REVISIONS = 200
DEFAULT_QUERY_OUT = "BENCH_PR3.json"
DEFAULT_QUERY_UPDATES = 8
DEFAULT_READS_PER_UPDATE = 25
DEFAULT_SERVE_OUT = "BENCH_PR4.json"
DEFAULT_SERVE_CLIENTS = 8
DEFAULT_SERVE_UPDATES = 30
DEFAULT_SOAK_OUT = "BENCH_PR6.json"
DEFAULT_SOAK_SECONDS = 60.0
DEFAULT_SOAK_SUBSCRIBERS = 4
DEFAULT_JOINS_OUT = "BENCH_PR7.json"
DEFAULT_WIDE_NODES = 1500
DEFAULT_REPLICATION_OUT = "BENCH_PR8.json"
DEFAULT_REPLICATION_FOLLOWERS = 3
DEFAULT_REPLICATION_SECONDS = 10.0
DEFAULT_OBS_OUT = "BENCH_PR9.json"
DEFAULT_OBS_SERVE_UPDATES = 10
DEFAULT_OBS_SERVE_CLIENTS = 4
DEFAULT_CLUSTER_OUT = "BENCH_PR10.json"
DEFAULT_CLUSTER_SHARDS = (1, 2, 4, 8)
DEFAULT_CLUSTER_EMPLOYEES = 1500
DEFAULT_CLUSTER_UPDATES = 8
DEFAULT_CLUSTER_READS = 2
TRAJECTORY_OUT = "BENCH_TRAJECTORY.json"

#: The read-heavy query mix.  ``org_chart`` reads no ``sal`` fact, so the
#: targeted-raise deltas provably cannot change it and its memo is carried
#: across every revision; the others are invalidated by each raise.
READ_QUERIES: tuple[tuple[str, str], ...] = (
    ("salaries", "E.isa -> empl, E.sal -> S"),
    ("managers", "M.pos -> mgr, M.sal -> S"),
    ("overpaid", "E.isa -> empl, E.boss -> B, E.sal -> SE, B.sal -> SB, SE > SB"),
    ("mgr0_reports", "E.boss -> mgr0, E.sal -> S"),
    ("org_chart", "E.boss -> B"),
)


def _time_apply(engine: UpdateEngine, program, base, repeats: int) -> dict:
    engine.apply(program, base)  # warm caches (plans, parser, indexes)
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = engine.apply(program, base)
        times.append(time.perf_counter() - start)
    return {
        "best_s": min(times),
        "mean_s": sum(times) / len(times),
        "repeats": repeats,
        "result_facts": len(result.result_base),
        "new_base_facts": len(result.new_base),
    }


def run_p1_sweep(
    sizes: tuple[int, ...] = DEFAULT_SIZES, repeats: int = DEFAULT_REPEATS
) -> dict:
    """Time ``UpdateEngine.apply`` for both evaluation paths per size.

    Returns a JSON-ready document with per-(size, mode) timings and the
    naive/semi-naive speedup per size; also asserts both paths produce the
    same result base (a cheap always-on differential check).
    """
    program = enterprise_update_program(hpe_threshold=4000)
    semi = UpdateEngine()
    naive = UpdateEngine(semi_naive=False)

    results = []
    speedups = {}
    for size in sizes:
        base = enterprise_base(n_employees=size, overpaid_ratio=0.1, seed=21)
        fast_outcome = semi.apply(program, base)
        naive_outcome = naive.apply(program, base)
        if fast_outcome.result_base != naive_outcome.result_base:
            raise AssertionError(
                f"semi-naive and naive results diverge at n={size}"
            )
        fast = _time_apply(semi, program, base, repeats)
        slow = _time_apply(naive, program, base, repeats)
        results.append({"n_employees": size, "mode": "semi_naive", **fast})
        results.append({"n_employees": size, "mode": "naive", **slow})
        speedups[str(size)] = slow["best_s"] / fast["best_s"]

    return {
        "benchmark": "p1_base_size_sweep",
        "program": "enterprise-update (rules 1-4, hpe threshold 4000)",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "sizes": list(sizes),
        "results": results,
        "speedup_naive_over_semi_naive": speedups,
    }


#: The wide-join synthetic: a four-way chain join (``a``/``b``/``c`` hops
#: into a ``v`` payload) closed by an arithmetic filter, so virtually all
#: evaluation time is spent in the join — the workload the codegen'd,
#: set-at-a-time executor is built for.
WIDE_JOIN_PROGRAM = """
wide: ins[X].hit -> V <=
    X.a -> Y, Y.b -> Z, Z.c -> W, W.v -> V, V > 50.
"""


def _wide_join_base(n_nodes: int):
    """A deterministic fan-in chain: ``n`` x-nodes funnel through ``n/3``
    y-nodes and ``n/9`` z-nodes into ``n/9`` w-payloads, so every join
    level has real multiplicity (no RNG — the same ``n`` is the same base).
    """
    from repro.core.facts import make_fact
    from repro.core.objectbase import ObjectBase
    from repro.core.terms import Oid

    n_y = max(1, n_nodes // 3)
    n_z = max(1, n_nodes // 9)
    base = ObjectBase()
    for i in range(n_nodes):
        base.add(make_fact(Oid(f"x{i}"), "a", (), Oid(f"y{i % n_y}")))
    for j in range(n_y):
        base.add(make_fact(Oid(f"y{j}"), "b", (), Oid(f"z{j % n_z}")))
    for k in range(n_z):
        base.add(make_fact(Oid(f"z{k}"), "c", (), Oid(f"w{k}")))
        base.add(make_fact(Oid(f"w{k}"), "v", (), Oid((k * 7) % 100)))
    base.ensure_exists()
    return base


def run_joins_sweep(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    repeats: int = DEFAULT_REPEATS,
    wide_nodes: int = DEFAULT_WIDE_NODES,
) -> dict:
    """Time compiled vs interpreted vs naive execution (see the module
    docstring).

    *Compiled* is the codegen'd, set-at-a-time path (the default);
    *interpreted* is the same join plans walked by the generic planned
    matcher (``EvaluationOptions(compiled=False)``); *naive* is the
    dynamic-ordering reference without plans or deltas.  All three engines
    replay identical workloads; a differential check asserts equal result
    bases before anything is timed.  Under ``REPRO_NO_CODEGEN`` the
    compiled engine silently degrades to the interpreted path — the
    document records ``codegen_enabled`` so that run is tellable-apart.
    """
    from repro.core.codegen import codegen_enabled
    from repro.core.rules import UpdateProgram
    from repro.lang.parser import parse_program

    engines = (
        ("compiled", UpdateEngine()),
        ("interpreted", UpdateEngine(compiled=False)),
        ("naive", UpdateEngine(semi_naive=False)),
    )

    def compare_and_time(program, base, label: str):
        outcomes = {
            mode: engine.apply(program, base) for mode, engine in engines
        }
        reference = outcomes["compiled"].result_base
        for mode in ("interpreted", "naive"):
            if outcomes[mode].result_base != reference:
                raise AssertionError(
                    f"compiled and {mode} results diverge on {label}"
                )
        return {
            mode: _time_apply(engine, program, base, repeats)
            for mode, engine in engines
        }

    program = enterprise_update_program(hpe_threshold=4000)
    p1_results = []
    p1_over_interpreted = {}
    p1_over_naive = {}
    for size in sizes:
        base = enterprise_base(n_employees=size, overpaid_ratio=0.1, seed=21)
        timed = compare_and_time(program, base, f"P1 n={size}")
        for mode, entry in timed.items():
            p1_results.append({"n_employees": size, "mode": mode, **entry})
        p1_over_interpreted[str(size)] = (
            timed["interpreted"]["best_s"] / timed["compiled"]["best_s"]
        )
        p1_over_naive[str(size)] = (
            timed["naive"]["best_s"] / timed["compiled"]["best_s"]
        )

    wide_program = UpdateProgram(
        parse_program(WIDE_JOIN_PROGRAM), "wide-join"
    )
    wide_base = _wide_join_base(wide_nodes)
    wide_timed = compare_and_time(
        wide_program, wide_base, f"wide join n={wide_nodes}"
    )

    return {
        "benchmark": "p7_joins_sweep",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "codegen_enabled": codegen_enabled(),
        "sizes": list(sizes),
        "p1": {
            "program": "enterprise-update (rules 1-4, hpe threshold 4000)",
            "results": p1_results,
            "speedup_compiled_over_interpreted": p1_over_interpreted,
            "speedup_compiled_over_naive": p1_over_naive,
        },
        "wide_join": {
            "program": WIDE_JOIN_PROGRAM.strip(),
            "n_nodes": wide_nodes,
            "base_facts": len(wide_base),
            "results": [
                {"mode": mode, **entry} for mode, entry in wide_timed.items()
            ],
            "speedup_compiled_over_interpreted": (
                wide_timed["interpreted"]["best_s"]
                / wide_timed["compiled"]["best_s"]
            ),
            "speedup_compiled_over_naive": (
                wide_timed["naive"]["best_s"] / wide_timed["compiled"]["best_s"]
            ),
        },
    }


def _build_chain(base, program, revisions: int, *, delta_chain: bool):
    from repro.storage import StoreOptions, VersionedStore

    store = VersionedStore(
        base, options=StoreOptions(delta_chain=delta_chain, snapshot_interval=64)
    )
    for index in range(revisions):
        store.apply(program, tag=f"rev{index + 1}")
    return store


def _chain_memory(base, program, revisions: int, *, delta_chain: bool):
    """(bytes, stored_entries, store) for one revision chain, built under
    tracemalloc so only the chain's own allocations are counted."""
    gc.collect()
    tracemalloc.start()
    store = _build_chain(base, program, revisions, delta_chain=delta_chain)
    gc.collect()
    current, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return current, store.stored_entries(), store


def run_store_sweep(
    revisions: int = DEFAULT_STORE_REVISIONS,
    n_employees: int = 100,
    apply_repeats: int = 40,
) -> dict:
    """The PR 2 store benchmark; see the module docstring for the claims."""
    from repro.core.plans import rule_plan
    from repro.storage import StoreOptions, VersionedStore

    base = enterprise_base(n_employees=n_employees, overpaid_ratio=0.1, seed=21)
    program = targeted_raise_program("emp0", percent=1.0)

    # -- (a) revision-chain memory --------------------------------------
    delta_bytes, delta_entries, delta_store = _chain_memory(
        base, program, revisions, delta_chain=True
    )
    full_bytes, full_entries, full_store = _chain_memory(
        base, program, revisions, delta_chain=False
    )
    # always-on differential check: both representations expose the same
    # facts at every probed revision
    for index in (0, revisions // 2, revisions):
        if set(delta_store.base_at(index)) != set(full_store.base_at(index)):
            raise AssertionError(f"delta and full-copy chains diverge at {index}")

    # -- (b) repeated-apply throughput ----------------------------------
    enterprise_program = enterprise_update_program(hpe_threshold=4000)
    warm_store = VersionedStore(paper_example_base(), options=StoreOptions())
    warm_store.apply(enterprise_program)  # populate the compiled cache
    start = time.perf_counter()
    for _ in range(apply_repeats):
        warm_store.apply(enterprise_program)
    warm_s = (time.perf_counter() - start) / apply_repeats

    cold_engine = UpdateEngine(compile_cache_size=0)
    cold_store = VersionedStore(
        paper_example_base(), engine=cold_engine, options=StoreOptions()
    )
    cold_store.apply(enterprise_program)
    start = time.perf_counter()
    for _ in range(apply_repeats):
        rule_plan.cache_clear()  # a cold engine has no compiled join plans
        cold_store.apply(enterprise_program)
    cold_s = (time.perf_counter() - start) / apply_repeats

    return {
        "benchmark": "p2_store_sweep",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workload": {
            "base": f"enterprise(n_employees={n_employees})",
            "chain_program": "targeted-raise-emp0 (two-fact delta per revision)",
            "revisions": revisions,
            "snapshot_interval": 64,
        },
        "memory": {
            "delta_chain_bytes": delta_bytes,
            "full_copy_bytes": full_bytes,
            "delta_chain_entries": delta_entries,
            "full_copy_entries": full_entries,
        },
        "memory_ratio_full_over_delta": full_bytes / delta_bytes,
        "entry_ratio_full_over_delta": full_entries / delta_entries,
        "throughput": {
            "program": "enterprise-update (4 rules) on the paper base",
            "apply_repeats": apply_repeats,
            "cached_apply_mean_s": warm_s,
            "cold_apply_mean_s": cold_s,
        },
        "speedup_cached_over_cold": cold_s / warm_s,
    }


def run_query_sweep(
    n_employees: int = 400,
    updates: int = DEFAULT_QUERY_UPDATES,
    reads_per_update: int = DEFAULT_READS_PER_UPDATE,
) -> dict:
    """The PR 3 read-heavy serving benchmark (see the module docstring).

    Each mode replays the identical trace — ``updates`` small transactions,
    each followed by ``reads_per_update`` executions of every query in
    ``READ_QUERIES`` — against its own store; only the read phases are
    timed.  The differential check compares each path's answers with the
    dynamic reference matcher at every revision, untimed, after that
    revision's read burst.
    """
    from repro.core.query import PreparedQuery, query_literals
    from repro.lang.parser import parse_body
    from repro.storage import VersionedStore

    base = enterprise_base(n_employees=n_employees, overpaid_ratio=0.1, seed=21)
    program = targeted_raise_program("emp0", percent=1.0)
    bodies = [(name, parse_body(text)) for name, text in READ_QUERIES]
    prepared = [
        (name, PreparedQuery(body, name=name)) for name, body in bodies
    ]

    def replay(read_phase, answers_of):
        """Time ``read_phase`` per revision; after each timed burst run the
        (untimed) differential check: this path's answers at *this*
        revision must equal the dynamic reference matcher's."""
        store = VersionedStore(base)
        store.apply(program, tag="warm")  # warm compiled-program cache
        total = 0.0
        for update in range(updates):
            store.apply(program, tag=f"u{update}")
            start = time.perf_counter()
            read_phase(store)
            total += time.perf_counter() - start
            current = store.current
            for name, query in prepared:
                if answers_of(store, query) != query.run_unplanned(current):
                    raise AssertionError(
                        f"answers diverge for {name!r} at revision "
                        f"{len(store) - 1}"
                    )
        return total, store

    def per_call_reads(store):
        current = store.current
        for _ in range(reads_per_update):
            for _name, body in bodies:
                query_literals(current, body)

    def prepared_reads(store):
        current = store.current
        for _ in range(reads_per_update):
            for _name, query in prepared:
                query.run(current)

    def served_reads(store):
        for _ in range(reads_per_update):
            for _name, query in prepared:
                store.query(query)

    per_call_s, _ = replay(
        per_call_reads, lambda store, query: query_literals(store.current, query.body)
    )
    prepared_s, _ = replay(
        prepared_reads, lambda store, query: query.run(store.current)
    )
    served_s, served_store = replay(
        served_reads, lambda store, query: store.query(query)
    )
    head = served_store.current

    reads = updates * reads_per_update * len(READ_QUERIES)
    per_query = {}
    for name, query in prepared:
        best, result = _best_of(lambda q=query: q.run(head), 5)
        best_dynamic, _reference = _best_of(lambda q=query: q.run_unplanned(head), 5)
        per_query[name] = {
            "planned_indexed_best_s": best,
            "dynamic_reference_best_s": best_dynamic,
            "speedup_indexed_over_dynamic": best_dynamic / best,
            "answers": len(result),
        }

    return {
        "benchmark": "p3_query_sweep",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workload": {
            "base": f"enterprise(n_employees={n_employees})",
            "update_program": "targeted-raise-emp0 (two-fact delta per revision)",
            "updates": updates,
            "reads_per_update": reads_per_update,
            "queries": {name: text for name, text in READ_QUERIES},
            "total_reads": reads,
        },
        "read_seconds": {
            "per_call": per_call_s,
            "prepared": prepared_s,
            "served_memoized": served_s,
        },
        "reads_per_second_served": reads / served_s,
        "speedup_prepared_over_per_call": per_call_s / prepared_s,
        "speedup_served_over_per_call": per_call_s / served_s,
        "per_query_head": per_query,
        "prepared_stats": served_store.prepared_stats(),
    }


def run_serve_sweep(
    n_clients: int = DEFAULT_SERVE_CLIENTS,
    updates: int = DEFAULT_SERVE_UPDATES,
    n_employees: int = 200,
    wire_updates: int = 10,
    wire_roundtrips: int = 50,
) -> dict:
    """The PR 4 concurrent-serving benchmark (see the module docstring).

    In-process phase (the guarded headline): ``n_clients`` clients each
    hold live subscriptions to every query in ``READ_QUERIES`` while
    ``updates`` single-object update transactions commit.  *Served* keeps
    all clients current via the push subsystem; *naive* re-evaluates every
    query for every client after every commit (per-request
    ``query_literals``, the polling cost against the PR 2 store).  Both
    move every client through ``updates × len(READ_QUERIES)`` up-to-date
    answer states.

    Both paths pay the identical engine cost for the commits themselves,
    so an *apply-only* phase (same chain, no subscribers, no reads)
    measures that shared write cost once; the guarded throughput ratio
    compares the **serving work** — total minus write cost — which is
    exactly the component the subsystem replaces (a deployment's write
    side is fixed by the update stream either way).  Total-time ratios are
    reported alongside.

    A differential check folds one client's diff stream over its initial
    answers and asserts the result equals a fresh store query at the head.

    Wire phase (informational): the same subscription workload end-to-end
    through the asyncio JSON-lines server on a unix socket, plus request
    round-trip latency.
    """
    import asyncio
    import tempfile

    from repro.core.query import fold_answers, query_literals
    from repro.lang.parser import parse_body
    from repro.server import AsyncClient, ReproServer, StoreService, connect_local
    from repro.storage import VersionedStore

    base = enterprise_base(n_employees=n_employees, overpaid_ratio=0.1, seed=21)
    program = targeted_raise_program("emp0", percent=1.0)
    bodies = [(name, parse_body(text)) for name, text in READ_QUERIES]

    # -- served: push subscriptions over the service ---------------------
    service = StoreService(VersionedStore(base))
    service.apply(program, tag="warm")  # warm compiled program + plans
    clients = [connect_local(service) for _ in range(n_clients)]
    initial: dict[int, dict[str, list]] = {}
    for position, client in enumerate(clients):
        initial[position] = {
            name: client.subscribe(text, name=name)["answers"]
            for name, text in READ_QUERIES
        }
    start = time.perf_counter()
    for update in range(updates):
        service.apply(program, tag=f"u{update}")
    served_s = time.perf_counter() - start

    # Differential check: client 0's folded diff stream == fresh queries.
    folded = {name: list(answers) for name, answers in initial[0].items()}
    by_name = {}
    for push in clients[0].pushes():
        by_name.setdefault(push["query"], []).append(push)
    push_messages = 0
    for position, client in enumerate(clients):
        if position == 0:
            streams = by_name
        else:
            streams = {}
            for push in client.pushes():
                streams.setdefault(push["query"], []).append(push)
        push_messages += sum(len(pushes) for pushes in streams.values())
        if position == 0:
            for name, pushes in streams.items():
                for push in pushes:
                    folded[name] = fold_answers(
                        folded[name], push["added"], push["removed"]
                    )
    head = service.store.current
    for name, text in READ_QUERIES:
        fresh = service.store.query(text)
        if folded[name] != fresh:
            raise AssertionError(
                f"folded subscription stream diverges from the store for "
                f"{name!r} at the head"
            )
    subscription_stats = service.subscriptions.stats()
    skipped = sum(
        entry["skipped"] for entry in subscription_stats["by_id"].values()
    )
    for client in clients:
        client.close()

    # -- naive: per-request re-evaluation on every commit ----------------
    naive_store = VersionedStore(base)
    naive_store.apply(program, tag="warm")
    start = time.perf_counter()
    for update in range(updates):
        naive_store.apply(program, tag=f"u{update}")
        current = naive_store.current
        for _client in range(n_clients):
            for _name, body in bodies:
                query_literals(current, body)
    naive_s = time.perf_counter() - start

    # -- apply-only: the shared write cost of the commit chain -----------
    write_store = VersionedStore(base)
    write_store.apply(program, tag="warm")
    start = time.perf_counter()
    for update in range(updates):
        write_store.apply(program, tag=f"u{update}")
    write_s = time.perf_counter() - start

    states = n_clients * len(READ_QUERIES) * updates
    served_read_s = max(served_s - write_s, 1e-9)
    naive_read_s = max(naive_s - write_s, 1e-9)
    ratio = naive_read_s / served_read_s

    # -- wire: the asyncio transport end-to-end --------------------------
    async def wire_phase() -> dict:
        wire_service = StoreService(VersionedStore(base))
        wire_service.apply(program, tag="warm")
        with tempfile.TemporaryDirectory() as socket_dir:
            path = f"{socket_dir}/bench.sock"
            server = await ReproServer(wire_service, path=path).start()
            subscribers = [
                await AsyncClient.connect(path=path) for _ in range(n_clients)
            ]
            writer = await AsyncClient.connect(path=path)
            for subscriber in subscribers:
                await subscriber.call(
                    "subscribe", body=READ_QUERIES[0][1], name="salaries"
                )
            start = time.perf_counter()
            for update in range(wire_updates):
                await writer.call(
                    "apply", program=SERVE_WIRE_PROGRAM, tag=f"w{update}"
                )
                # Every commit changes emp0's salary: each subscriber gets
                # exactly one diff per commit.
                for subscriber in subscribers:
                    await subscriber.next_push(timeout=30.0)
            wall_s = time.perf_counter() - start

            latencies = []
            for _ in range(wire_roundtrips):
                probe = time.perf_counter()
                await writer.call("query", body=READ_QUERIES[0][1])
                latencies.append(time.perf_counter() - probe)
            for subscriber in subscribers:
                await subscriber.close()
            await writer.close()
            await server.close()
            return {
                "clients": n_clients,
                "commits": wire_updates,
                "wall_seconds": wall_s,
                "commits_per_second": wire_updates / wall_s,
                "pushes_delivered": wire_updates * n_clients,
                "pushes_per_second": wire_updates * n_clients / wall_s,
                "query_roundtrip_best_s": min(latencies),
                "query_roundtrip_mean_s": sum(latencies) / len(latencies),
            }

    wire = asyncio.run(wire_phase())

    return {
        "benchmark": "p4_serve_sweep",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workload": {
            "base": f"enterprise(n_employees={n_employees})",
            "update_program": "targeted-raise-emp0 (two-fact delta per commit)",
            "clients": n_clients,
            "updates": updates,
            "queries": {name: text for name, text in READ_QUERIES},
            "client_query_states": states,
        },
        "in_process": {
            "served_seconds": served_s,
            "naive_seconds": naive_s,
            "write_only_seconds": write_s,
            "served_serving_seconds": served_read_s,
            "naive_serving_seconds": naive_read_s,
            "served_states_per_second": states / served_read_s,
            "naive_states_per_second": states / naive_read_s,
            "total_ratio_served_over_naive": naive_s / served_s,
            "push_messages": push_messages,
            "skipped_evaluations": skipped,
            "head_facts": len(head),
        },
        "throughput_ratio_served_over_naive": ratio,
        "wire": wire,
    }


#: The wire phase commits through the protocol, so the program travels as
#: concrete syntax (the same two-fact delta as ``targeted_raise_program``).
SERVE_WIRE_PROGRAM = (
    "raise_emp0: mod[emp0].sal -> (S, S2) <= emp0.sal -> S, S2 = S * 1.01."
)


def run_soak_sweep(
    duration: float = DEFAULT_SOAK_SECONDS,
    n_subscribers: int = DEFAULT_SOAK_SUBSCRIBERS,
    n_employees: int = 100,
) -> dict:
    """The PR 6 fault-tolerance soak (see the module docstring).

    A journalled store is served over a unix socket while a writer commits
    mixed churn (targeted raises cycling over distinct employees, plus a
    hire/fire pair that adds and removes subscription rows) and
    ``n_subscribers`` reconnecting clients fold live answer diffs.  Halfway
    through, the server is killed abruptly, the journal is compacted and
    verified offline, and a fresh server comes up on the same socket —
    every connection carries a :class:`~repro.api.RetryPolicy` and must
    ride the restart.

    The soak fails (``"consistent": false`` / non-zero error counters) if
    any client sees a non-retryable error, or if any subscriber's folded
    answers diverge from a fresh head query once the dust settles.  A
    mutation that dies with the link is *not* replayed — it surfaces the
    retryable :class:`~repro.api.ConnectionClosed` and is counted, which
    is the documented contract.
    """
    import tempfile

    import repro
    from repro.api import BackgroundServer, ConnectionClosed, RetryPolicy
    from repro.server.errors import ServerBusyError
    from repro.storage import compact_journal, verify_journal

    base = enterprise_base(
        n_employees=n_employees, overpaid_ratio=0.1, seed=21
    )
    query = READ_QUERIES[0][1]  # salaries: one diff per raise
    policy = RetryPolicy(attempts=60, base_delay=0.05, max_delay=1.0)
    churn_ids = [f"emp{k}" for k in range(10)]

    counters = {
        "commits": 0,
        "reads": 0,
        "deltas_folded": 0,
        "lagged_resyncs": 0,
        "retryable_errors": 0,
        "non_retryable_errors": 0,
        "restarts": 0,
    }
    failures: list[str] = []

    def drain(streams) -> None:
        for stream in streams:
            while True:
                delta = stream.next(timeout=0.0)
                if delta is None:
                    break
                counters["deltas_folded"] += 1
                if delta.lagged:
                    counters["lagged_resyncs"] += 1

    with tempfile.TemporaryDirectory() as scratch:
        journal_dir = Path(scratch) / "journal"
        socket = str(Path(scratch) / "soak.sock")
        repro.connect(journal_dir, base=base, tag="soak-seed").close()

        server = BackgroundServer(journal_dir, path=socket)
        writer = repro.connect(server.target, retry=policy)
        subscribers = [
            repro.connect(server.target, retry=policy)
            for _ in range(n_subscribers)
        ]
        streams = [conn.subscribe(query) for conn in subscribers]

        start = time.perf_counter()
        deadline = start + duration
        kill_at = start + duration / 2
        killed = False
        tick = 0
        while time.perf_counter() < deadline:
            tick += 1
            if not killed and time.perf_counter() >= kill_at:
                # the chaos step: SIGKILL-equivalent, offline maintenance
                # (compaction + checksum audit), restart on the same path
                killed = True
                server.close()
                compact_journal(journal_dir, snapshot_interval=1000)
                audit = verify_journal(journal_dir)
                if not audit["ok"]:
                    failures.append(
                        f"journal damaged after kill: {audit['problems']}"
                    )
                server = BackgroundServer(journal_dir, path=socket)
                counters["restarts"] += 1
            if tick % 7 == 0:
                program = (
                    f"hire: ins[temp{tick}].isa -> empl <= "
                    f"emp0.isa -> empl.\n"
                    f"pay: ins[temp{tick}].sal -> {1000 + tick} <= "
                    f"emp0.isa -> empl."
                )
            elif tick % 7 == 1 and tick > 7:
                fired = tick - 1  # the object hired on the previous tick
                program = (
                    f"fire: del[temp{fired}].* <= temp{fired}.isa -> empl."
                )
            else:
                program = targeted_raise_program(
                    churn_ids[tick % len(churn_ids)], percent=1.0
                )
            try:
                writer.apply(program, tag=f"soak-{tick}")
                counters["commits"] += 1
                if tick % 25 == 0:
                    writer.query(query)
                    counters["reads"] += 1
            except (ConnectionClosed, ServerBusyError):
                counters["retryable_errors"] += 1
            except Exception as error:  # any other failure sinks the soak
                counters["non_retryable_errors"] += 1
                failures.append(f"{type(error).__name__}: {error}")
            drain(streams)
        wall_s = time.perf_counter() - start

        # settle: one marker commit, then every stream must fold to the head
        head = writer.apply(
            targeted_raise_program("emp0", percent=1.0), tag="soak-final"
        ).index
        expected = writer.query(query)
        consistent = True
        for position, stream in enumerate(streams):
            settle_deadline = time.monotonic() + 30.0
            while (
                stream.revision < head
                and time.monotonic() < settle_deadline
            ):
                delta = stream.next(timeout=1.0)
                if delta is not None:
                    counters["deltas_folded"] += 1
                    if delta.lagged:
                        counters["lagged_resyncs"] += 1
            if stream.answers != expected:
                consistent = False
                failures.append(
                    f"subscriber {position} diverged: folded "
                    f"{len(stream.answers)} rows at revision "
                    f"{stream.revision}, head {head} has {len(expected)}"
                )
        reconnects = writer.reconnects + sum(
            conn.reconnects for conn in subscribers
        )
        final_audit = verify_journal(journal_dir)
        for conn in (writer, *subscribers):
            conn.close()
        server.close()

    return {
        "benchmark": "p6_soak",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workload": {
            "base": f"enterprise(n_employees={n_employees})",
            "churn": "targeted raises over 10 objects + hire/fire pair",
            "query": query,
            "subscribers": n_subscribers,
            "requested_seconds": duration,
        },
        "wall_seconds": wall_s,
        "commits_per_second": counters["commits"] / wall_s,
        "consistent": consistent,
        "journal_ok": final_audit["ok"],
        "reconnects": reconnects,
        "failures": failures,
        **counters,
    }


def run_replication_sweep(
    n_followers: int = DEFAULT_REPLICATION_FOLLOWERS,
    duration: float = DEFAULT_REPLICATION_SECONDS,
    n_employees: int = 60,
) -> dict:
    """The PR 8 replicated-serving sweep (see the module docstring).

    An fsync-durable primary serves a journalled enterprise base over a
    unix socket with ``n_followers`` journal-streaming followers attached.
    Four things are measured, three of which double as invariants the CI
    guard enforces:

    * **catch-up** — a burst of commits lands on the primary; the wall
      time until every follower's store reaches the primary's head is the
      replication lag under load (guarded: stays under a ceiling);
    * **read fanout** — one reader thread per follower hammers the
      salaries query against its replica for ``duration`` seconds while a
      background writer keeps commits (and therefore replicated deltas)
      flowing; aggregate replica reads/s is the fanout headline
      (guarded: stays above a floor);
    * **failover** — the primary dies abruptly (server cut, no shutdown);
      the freshest follower is promoted with a fencing epoch and the
      clock stops at the first successful write on the new primary;
    * **durability across failover** — every commit the dead primary
      acknowledged must be a byte-identical prefix of the promoted
      follower's journal (guarded: ``lost_acknowledged_commits == 0``),
      a follower subscription's folded answers must equal a fresh query
      after the failover write, and the promoted journal must pass the
      offline epoch/CRC audit.
    """
    import tempfile
    import threading

    import repro
    from repro.api import BackgroundServer
    from repro.core.query import fold_answers
    from repro.replication import Follower
    from repro.server.service import StoreService
    from repro.storage import verify_journal
    from repro.storage.serialize import JOURNAL_FILE, DurabilityOptions

    base = enterprise_base(n_employees=n_employees, overpaid_ratio=0.1, seed=21)
    query = READ_QUERIES[0][1]  # salaries: one diff per raise
    fsync = DurabilityOptions(mode="fsync")
    churn_ids = [f"emp{k}" for k in range(10)]
    catchup_commits = 40
    failures: list[str] = []

    def all_caught_up(service, followers, *, timeout=60.0) -> bool:
        deadline = time.monotonic() + timeout
        head = len(service.store)
        while any(len(f.service.store) < head for f in followers):
            if time.monotonic() > deadline:
                return False
            time.sleep(0.005)
        return True

    with tempfile.TemporaryDirectory() as scratch:
        primary_dir = Path(scratch) / "primary"
        service = StoreService.create(
            base, primary_dir, tag="repl-seed", durability=fsync
        )
        socket = str(Path(scratch) / "repl.sock")
        server = BackgroundServer(service, path=socket)
        followers = [
            Follower(
                Path(scratch) / f"f{i}", server.address,
                durability=fsync, heartbeat_interval=0.1,
            ).start()
            for i in range(n_followers)
        ]
        writer = repro.connect(server.target)
        acked = 0

        # -- catch-up under a burst of writes --------------------------
        catchup_start = time.perf_counter()
        for tick in range(catchup_commits):
            writer.apply(
                targeted_raise_program(
                    churn_ids[tick % len(churn_ids)], percent=1.0
                ),
                tag=f"burst-{tick}",
            )
            acked += 1
        if not all_caught_up(service, followers):
            failures.append("followers never caught up after the burst")
        catchup_s = time.perf_counter() - catchup_start

        # -- read fanout across the replicas ---------------------------
        replica_conns = [repro.connect(f.service) for f in followers]
        reads = [0] * n_followers
        stop = threading.Event()

        def reader(position: int) -> None:
            conn = replica_conns[position]
            while not stop.is_set():
                conn.query(query)
                reads[position] += 1

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in range(n_followers)
        ]
        fanout_start = time.perf_counter()
        for thread in threads:
            thread.start()
        next_commit = fanout_start
        while time.perf_counter() - fanout_start < duration:
            if time.perf_counter() >= next_commit:
                writer.apply(
                    targeted_raise_program(
                        churn_ids[acked % len(churn_ids)], percent=1.0
                    ),
                    tag=f"churn-{acked}",
                )
                acked += 1
                next_commit += 0.25
            time.sleep(0.01)
        stop.set()
        for thread in threads:
            thread.join(timeout=5)
        fanout_s = time.perf_counter() - fanout_start

        # -- failover: abrupt primary death, promote the freshest ------
        if not all_caught_up(service, followers):
            failures.append("followers never caught up before the kill")
        acked_text = (primary_dir / JOURNAL_FILE).read_text()
        survivor = max(followers, key=lambda f: len(f.service.store))
        stream = repro.connect(survivor.service).subscribe(query)
        folded = list(stream.answers)

        failover_start = time.perf_counter()
        server.close()  # dies with every ack fsync-durable and replicated
        writer.close()
        epoch = survivor.promote()
        promoted = repro.connect(survivor.service)
        promoted.apply(
            targeted_raise_program("emp0", percent=1.0), tag="after-failover"
        )
        failover_s = time.perf_counter() - failover_start

        # -- invariants -------------------------------------------------
        promoted_text = (survivor.directory / JOURNAL_FILE).read_text()
        if promoted_text.startswith(acked_text):
            lost = 0
        else:
            acked_lines = acked_text.splitlines()
            promoted_lines = promoted_text.splitlines()
            matched = 0
            for mine, theirs in zip(acked_lines, promoted_lines):
                if mine != theirs:
                    break
                matched += 1
            lost = len(acked_lines) - matched
            failures.append(
                f"promoted journal lost {lost} acked line(s)"
            )

        settle = time.monotonic() + 10.0
        expected = promoted.query(query)
        while time.monotonic() < settle:
            delta = stream.next(timeout=0.2)
            if delta is None:
                if folded == promoted.query(query):
                    break
                continue
            if delta.lagged:
                folded = list(delta.answers)
            else:
                folded = fold_answers(
                    folded,
                    [dict(row) for row in delta.added],
                    [dict(row) for row in delta.removed],
                )
        expected = promoted.query(query)
        consistent = sorted(folded, key=str) == sorted(expected, key=str)
        if not consistent:
            failures.append(
                f"subscription diverged after failover: folded "
                f"{len(folded)} rows, fresh query has {len(expected)}"
            )

        audit = verify_journal(survivor.directory)
        if not audit["ok"]:
            failures.append(
                f"promoted journal failed the audit: {audit['problems']}"
            )

        stream.close()
        promoted.close()
        for conn in replica_conns:
            conn.close()
        for follower in followers:
            follower.close()
        server.close()

    total_reads = sum(reads)
    return {
        "benchmark": "p8_replication",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workload": {
            "base": f"enterprise(n_employees={n_employees})",
            "followers": n_followers,
            "query": query,
            "catchup_commits": catchup_commits,
            "requested_seconds": duration,
            "durability": "fsync",
        },
        "replication_catchup_seconds": catchup_s,
        "read_fanout": {
            "followers": n_followers,
            "reads_total": total_reads,
            "reads_per_follower": reads,
            "wall_seconds": fanout_s,
        },
        "replica_reads_per_second": total_reads / fanout_s,
        "failover_seconds": failover_s,
        "promoted_epoch": epoch,
        "acked_commits": acked,
        "lost_acknowledged_commits": lost,
        "consistent": consistent,
        "journal_ok": audit["ok"],
        "journal_max_epoch": audit.get("max_epoch", 0),
        "failures": failures,
    }


def run_cluster_sweep(
    shard_counts: tuple[int, ...] = DEFAULT_CLUSTER_SHARDS,
    n_employees: int = DEFAULT_CLUSTER_EMPLOYEES,
    updates: int = DEFAULT_CLUSTER_UPDATES,
    reads_per_update: int = DEFAULT_CLUSTER_READS,
    commit_probes: int = 12,
    repeats: int = 2,
) -> dict:
    """The PR 10 sharded-cluster sweep (``--cluster``, ``BENCH_PR10.json``).

    One enterprise base is hash-partitioned across 1, 2, 4 and 8 shards
    (each shard a served store behind the ``cluster:`` router) and the same
    read-your-writes churn loop runs at every shard count: a targeted
    single-host raise commits, then scatter reads of a selective salary
    filter follow.  Two headline numbers, both guarded in CI:

    * **aggregate read scaling** — reads/s at the largest shard count over
      reads/s at one shard.  This harness is single-core, so the scaling
      measured here is *locality*, not parallelism: both the per-commit
      update evaluation and the post-invalidation prepared-query recompute
      cost are proportional to the written shard's size, so at 8 shards
      ~7/8 of that work disappears from the loop (the unwritten shards
      answer from their carried memos).  On real hardware the per-shard
      processes add parallel speedup on top.
    * **single-shard commit overhead** — routed commits/s through a
      1-shard cluster over commits/s against the same store served
      standalone; the router's classification layer must stay within 10 %
      (floor 0.9).

    A differential check replays every commit sequence against an
    in-process ``memory:`` store and compares the full scatter read at
    each shard count — answers must be identical, or the run fails.
    """
    import tempfile

    import repro
    from repro.api import BackgroundServer
    from repro.cluster import LocalCluster
    from repro.lang.pretty import format_object_base
    from repro.server.service import StoreService
    from repro.storage import VersionedStore

    base_text = format_object_base(
        enterprise_base(n_employees=n_employees, overpaid_ratio=0.1, seed=21)
    )
    filter_query = "E.isa -> empl, E.sal -> S, S > 970000"
    salaries_query = READ_QUERIES[0][1]
    churn_ids = [f"emp{k}" for k in range(20)]
    failures: list[str] = []

    def churn_loop(conn) -> float:
        start = time.perf_counter()
        for tick in range(updates):
            conn.apply(
                targeted_raise_program(
                    churn_ids[tick % len(churn_ids)], percent=1.0
                ),
                tag=f"churn-{tick}",
            )
            for _ in range(reads_per_update):
                conn.query(filter_query)
        return time.perf_counter() - start

    scaling: list[dict] = []
    for count in shard_counts:
        with LocalCluster(base_text, shards=count) as deployment:
            with repro.connect(deployment.target) as conn:
                conn.apply(
                    targeted_raise_program("emp21", percent=1.0), tag="warm"
                )
                conn.query(filter_query)
                best_wall = min(churn_loop(conn) for _ in range(repeats))

                # differential: replay the same commits on one memory
                # store; the scatter read must merge to identical answers
                with repro.connect("memory:", base=base_text) as reference:
                    reference.apply(
                        targeted_raise_program("emp21", percent=1.0),
                        tag="warm",
                    )
                    for round_number in range(repeats):
                        for tick in range(updates):
                            reference.apply(
                                targeted_raise_program(
                                    churn_ids[tick % len(churn_ids)],
                                    percent=1.0,
                                ),
                                tag=f"churn-{tick}",
                            )
                    consistent = conn.query(salaries_query) == (
                        reference.query(salaries_query)
                    )
                if not consistent:
                    failures.append(
                        f"scatter answers diverged from the memory replay "
                        f"at {count} shard(s)"
                    )
                router = conn.stats()["cluster"]["router"]
                scaling.append(
                    {
                        "shards": count,
                        "wall_seconds": best_wall,
                        "reads_per_second": (
                            updates * reads_per_update / best_wall
                        ),
                        "commits_per_second": updates / best_wall,
                        "consistent": consistent,
                        "router_reads": {
                            "single": router["single_reads"],
                            "scatter": router["scatter_reads"],
                            "gather": router["gather_reads"],
                        },
                    }
                )

    def commit_probe(conn) -> float:
        conn.apply(targeted_raise_program("emp21", percent=1.0), tag="warm")
        start = time.perf_counter()
        for tick in range(commit_probes):
            conn.apply(
                targeted_raise_program(
                    churn_ids[tick % len(churn_ids)], percent=1.0
                ),
                tag=f"probe-{tick}",
            )
        return commit_probes / (time.perf_counter() - start)

    with tempfile.TemporaryDirectory() as scratch:
        service = StoreService(
            VersionedStore(repro.parse_object_base(base_text).copy())
        )
        server = BackgroundServer(
            service, path=str(Path(scratch) / "solo.sock")
        )
        try:
            with repro.connect(server.target) as conn:
                standalone_commits = max(
                    commit_probe(conn) for _ in range(repeats)
                )
        finally:
            server.close()
    with LocalCluster(base_text, shards=1) as deployment:
        with repro.connect(deployment.target) as conn:
            routed_commits = max(commit_probe(conn) for _ in range(repeats))

    first = scaling[0]
    largest = scaling[-1]
    read_scaling = (
        largest["reads_per_second"] / first["reads_per_second"]
        if first["reads_per_second"]
        else 0.0
    )
    commit_ratio = (
        routed_commits / standalone_commits if standalone_commits else 0.0
    )
    return {
        "benchmark": "p10_cluster",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workload": {
            "base": f"enterprise(n_employees={n_employees})",
            "shard_counts": list(shard_counts),
            "updates": updates,
            "reads_per_update": reads_per_update,
            "read_query": filter_query,
            "consistency_query": salaries_query,
            "commit_probes": commit_probes,
            "repeats": repeats,
            "note": (
                "single-core harness: the read scaling measured here is "
                "partition locality (per-commit apply and memo-recompute "
                "cost follow the written shard's size), not parallelism"
            ),
        },
        "scaling": scaling,
        "read_scaling_largest_over_one": read_scaling,
        "read_scaling_shards": largest["shards"],
        "standalone_commits_per_second": standalone_commits,
        "routed_commits_per_second": routed_commits,
        "commit_throughput_ratio_routed_over_standalone": commit_ratio,
        "consistent": all(entry["consistent"] for entry in scaling),
        "failures": failures,
    }


def run_obs_sweep(
    n_employees: int = 400,
    repeats: int = DEFAULT_REPEATS,
    serve_updates: int = DEFAULT_OBS_SERVE_UPDATES,
    n_clients: int = DEFAULT_OBS_SERVE_CLIENTS,
) -> dict:
    """The PR 9 observability-overhead sweep (see the module docstring).

    Two hot paths are timed twice each — metrics registry forced off,
    then forced on — and the on/off ratios are the guarded numbers:

    * the P1[``n_employees``] enterprise apply (per-rule profiling is the
      densest instrumentation in the engine's inner loop);
    * a scaled in-process serve run: ``n_clients`` clients subscribed to
      every read query while ``serve_updates`` commits land (commit-phase
      timing + slowlog checks on the commit path).

    The enabled runs leave real data behind; a filtered registry sample
    (per-rule fired counters, commit-phase histograms) is embedded so the
    document doubles as a fixture of what operators see.
    """
    from repro.obs import metrics as obs
    from repro.server import StoreService, connect_local
    from repro.storage import VersionedStore

    program = enterprise_update_program(hpe_threshold=4000)
    base = enterprise_base(
        n_employees=n_employees, overpaid_ratio=0.1, seed=21
    )
    engine = UpdateEngine()

    def served_seconds() -> float:
        service = StoreService(VersionedStore(base))
        service.apply(program, tag="warm")
        clients = [connect_local(service) for _ in range(n_clients)]
        for client in clients:
            for name, text in READ_QUERIES:
                client.subscribe(text, name=name)
        start = time.perf_counter()
        for update in range(serve_updates):
            service.apply(program, tag=f"u{update}")
        elapsed = time.perf_counter() - start
        for client in clients:
            client.close()
        return elapsed

    def timed_apply() -> float:
        start = time.perf_counter()
        engine.apply(program, base)
        return time.perf_counter() - start

    # Interleave the off/on measurements round by round: the guarded
    # ratios compare best-of times, and sequential blocks would fold
    # machine drift between the blocks into the ratio.  Alternating
    # within one loop makes both sides see the same drift.
    rounds = max(repeats, 5)
    p1_off_times: list[float] = []
    p1_on_times: list[float] = []
    serve_off_times: list[float] = []
    serve_on_times: list[float] = []
    try:
        obs.registry().reset()  # the sample below is this run's data only
        engine.apply(program, base)  # warm caches (plans, parser, indexes)
        for _ in range(rounds):
            obs.enable_metrics(False)
            p1_off_times.append(timed_apply())
            obs.enable_metrics(True)
            p1_on_times.append(timed_apply())
        for _ in range(3):
            obs.enable_metrics(False)
            serve_off_times.append(served_seconds())
            obs.enable_metrics(True)
            serve_on_times.append(served_seconds())
        snapshot = obs.registry().snapshot()
    finally:
        obs.enable_metrics(None)

    def summary(times: list[float]) -> dict:
        return {
            "best_s": min(times),
            "mean_s": sum(times) / len(times),
            "repeats": len(times),
        }

    p1_off, p1_on = summary(p1_off_times), summary(p1_on_times)
    serve_off = min(serve_off_times)
    serve_on = min(serve_on_times)

    sample = {
        name: entry
        for name, entry in snapshot.items()
        if name in (
            "engine_rule_fired", "engine_tp_rounds", "commit_phase_seconds"
        )
    }
    return {
        "benchmark": "p9_observability",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workload": {
            "base": f"enterprise(n_employees={n_employees})",
            "program": "enterprise-update (rules 1-4, hpe threshold 4000)",
            "repeats": repeats,
            "serve_updates": serve_updates,
            "serve_clients": n_clients,
        },
        "p1": {
            "n_employees": n_employees,
            "metrics_off": p1_off,
            "metrics_on": p1_on,
        },
        "p1_overhead_ratio_on_over_off": p1_on["best_s"] / p1_off["best_s"],
        "serve": {
            "clients": n_clients,
            "updates": serve_updates,
            "metrics_off_seconds": serve_off,
            "metrics_on_seconds": serve_on,
        },
        "serve_throughput_ratio_on_over_off": serve_off / serve_on,
        "registry_sample": sample,
    }


# ----------------------------------------------------------------------
# the unified trajectory document
# ----------------------------------------------------------------------

#: Headline-metric extractors per benchmark document kind.
def _p1_headline(document: dict) -> dict:
    speedups = document["speedup_naive_over_semi_naive"]
    return {
        "speedup_naive_over_semi_naive": speedups,
        "headline": f"semi-naive {max(speedups.values()):.2f}x over naive "
        f"(largest base)",
    }


def _p2_headline(document: dict) -> dict:
    return {
        "memory_ratio_full_over_delta": document["memory_ratio_full_over_delta"],
        "speedup_cached_over_cold": document["speedup_cached_over_cold"],
        "headline": f"delta chain {document['memory_ratio_full_over_delta']:.1f}x "
        f"smaller, cached apply "
        f"{document['speedup_cached_over_cold']:.2f}x faster",
    }


def _p3_headline(document: dict) -> dict:
    return {
        "speedup_served_over_per_call": document["speedup_served_over_per_call"],
        "speedup_prepared_over_per_call": document[
            "speedup_prepared_over_per_call"
        ],
        "reads_per_second_served": document["reads_per_second_served"],
        "headline": f"memoized serving "
        f"{document['speedup_served_over_per_call']:.1f}x over per-call reads",
    }


def _p4_headline(document: dict) -> dict:
    in_process = document["in_process"]
    return {
        "throughput_ratio_served_over_naive": document[
            "throughput_ratio_served_over_naive"
        ],
        "served_states_per_second": in_process["served_states_per_second"],
        "wire_pushes_per_second": document["wire"]["pushes_per_second"],
        "headline": f"push serving "
        f"{document['throughput_ratio_served_over_naive']:.1f}x over naive "
        f"per-request re-evaluation "
        f"({document['workload']['clients']} clients)",
    }


def _p6_headline(document: dict) -> dict:
    return {
        "commits_per_second": document["commits_per_second"],
        "non_retryable_errors": document["non_retryable_errors"],
        "reconnects": document["reconnects"],
        "consistent": document["consistent"],
        "headline": f"soak {document['wall_seconds']:.0f}s: "
        f"{document['commits_per_second']:.0f} commits/s through "
        f"kill+compact+restart, {document['reconnects']} reconnects, "
        f"{document['non_retryable_errors']} non-retryable errors",
    }


def _p7_headline(document: dict) -> dict:
    speedups = document["p1"]["speedup_compiled_over_interpreted"]
    largest = str(max(int(size) for size in speedups))
    wide = document["wide_join"]["speedup_compiled_over_interpreted"]
    return {
        "speedup_compiled_over_interpreted": speedups,
        "wide_join_speedup_compiled_over_interpreted": wide,
        "headline": f"codegen {speedups[largest]:.2f}x over interpreted "
        f"(P1 n={largest}), {wide:.2f}x on the wide join",
    }


def _p8_headline(document: dict) -> dict:
    return {
        "replica_reads_per_second": document["replica_reads_per_second"],
        "replication_catchup_seconds": document[
            "replication_catchup_seconds"
        ],
        "failover_seconds": document["failover_seconds"],
        "lost_acknowledged_commits": document["lost_acknowledged_commits"],
        "consistent": document["consistent"],
        "headline": f"{document['workload']['followers']} replicas: "
        f"{document['replica_reads_per_second']:.0f} replica reads/s, "
        f"catch-up {document['replication_catchup_seconds']:.2f}s, "
        f"failover {document['failover_seconds'] * 1e3:.0f} ms, "
        f"{document['lost_acknowledged_commits']} acked commits lost",
    }


def _p9_headline(document: dict) -> dict:
    p1_ratio = document["p1_overhead_ratio_on_over_off"]
    serve_ratio = document["serve_throughput_ratio_on_over_off"]
    return {
        "p1_overhead_ratio_on_over_off": p1_ratio,
        "serve_throughput_ratio_on_over_off": serve_ratio,
        "headline": f"metrics on: P1[{document['p1']['n_employees']}] "
        f"apply {(p1_ratio - 1) * 100:+.1f}% time, serve throughput "
        f"{serve_ratio:.2f}x of disabled",
    }


def _p10_headline(document: dict) -> dict:
    return {
        "read_scaling_largest_over_one": document[
            "read_scaling_largest_over_one"
        ],
        "commit_throughput_ratio_routed_over_standalone": document[
            "commit_throughput_ratio_routed_over_standalone"
        ],
        "consistent": document["consistent"],
        "headline": f"{document['read_scaling_shards']} shards: "
        f"{document['read_scaling_largest_over_one']:.1f}x aggregate read "
        f"throughput over 1 shard, single-shard commits "
        f"{document['commit_throughput_ratio_routed_over_standalone']:.2f}x "
        f"of standalone",
    }


_HEADLINES = {
    "p1_base_size_sweep": _p1_headline,
    "p2_store_sweep": _p2_headline,
    "p3_query_sweep": _p3_headline,
    "p4_serve_sweep": _p4_headline,
    "p6_soak": _p6_headline,
    "p7_joins_sweep": _p7_headline,
    "p8_replication": _p8_headline,
    "p9_observability": _p9_headline,
    "p10_cluster": _p10_headline,
}


def _stamp_metrics(document: dict) -> dict:
    """Record the document's numeric headline fields as ``bench_*``
    gauges through the observability registry (the bench harness reports
    through the same surface operators read), then embed that slice into
    the document as its ``metrics`` section."""
    from repro.obs import metrics as obs

    registry = obs.registry()
    benchmark = document.get("benchmark", "unknown")
    extractor = _HEADLINES.get(benchmark)
    headline = extractor(document) if extractor else {}
    for field, value in headline.items():
        if isinstance(value, bool):
            value = 1.0 if value else 0.0
        if isinstance(value, (int, float)):
            registry.set_gauge(
                f"bench_{field}", float(value), benchmark=benchmark
            )
        elif isinstance(value, dict):
            for size, inner in value.items():
                if isinstance(inner, bool) or not isinstance(
                    inner, (int, float)
                ):
                    continue
                registry.set_gauge(
                    f"bench_{field}", float(inner),
                    benchmark=benchmark, size=str(size),
                )
    document["metrics"] = registry.snapshot(prefix="bench_")
    return document


def _write_document(out: Path, document: dict) -> None:
    _stamp_metrics(document)
    out.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def build_trajectory(root: Path | str = ".") -> dict:
    """Merge the headline metrics of every ``BENCH_PR*.json`` under
    ``root`` into one machine-readable document, keyed ``"PR<n>"`` in PR
    order — the one place to read the performance trajectory."""
    root = Path(root)
    prs: dict[str, dict] = {}
    for path in sorted(
        root.glob("BENCH_PR*.json"),
        key=lambda p: int("".join(c for c in p.stem if c.isdigit()) or 0),
    ):
        digits = "".join(c for c in path.stem if c.isdigit())
        if not digits:
            continue
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        extractor = _HEADLINES.get(document.get("benchmark"))
        entry = {
            "source": path.name,
            "benchmark": document.get("benchmark", "unknown"),
        }
        if extractor is not None:
            entry.update(extractor(document))
        if "metrics" in document:
            entry["metrics"] = document["metrics"]
        prs[f"PR{int(digits)}"] = entry
    return {
        "format": "repro-bench-trajectory",
        "version": 1,
        "prs": prs,
    }


def write_trajectory(root: Path | str = ".") -> Path:
    """Rebuild ``BENCH_TRAJECTORY.json`` next to the scanned documents."""
    root = Path(root)
    document = build_trajectory(root)
    out = root / TRAJECTORY_OUT
    out.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return out


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench", description="run the P1 scaling or P2 store sweep"
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help=f"output JSON path (default: {DEFAULT_OUT}, "
        f"{DEFAULT_STORE_OUT} with --store)",
    )
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES)
    )
    parser.add_argument(
        "--store", action="store_true",
        help="run the versioned-store sweep (memory + repeated apply) "
        "instead of the P1 scaling sweep",
    )
    parser.add_argument(
        "--revisions", type=int, default=DEFAULT_STORE_REVISIONS,
        help="store sweep: chain length (default: %(default)s)",
    )
    parser.add_argument(
        "--queries", action="store_true",
        help="run the read-heavy prepared-query sweep instead of the P1 "
        "scaling sweep",
    )
    parser.add_argument(
        "--updates", type=int, default=None,
        help="update transactions per sweep (defaults: "
        f"{DEFAULT_QUERY_UPDATES} for --queries, "
        f"{DEFAULT_SERVE_UPDATES} for --serve)",
    )
    parser.add_argument(
        "--reads", type=int, default=DEFAULT_READS_PER_UPDATE,
        help="query sweep: reads per query per update (default: %(default)s)",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="run the concurrent served-subscription sweep instead of the "
        "P1 scaling sweep",
    )
    parser.add_argument(
        "--clients", type=int, default=DEFAULT_SERVE_CLIENTS,
        help="serve sweep: concurrent subscribed clients (default: %(default)s)",
    )
    parser.add_argument(
        "--soak", action="store_true",
        help="run the fault-tolerance soak (mixed churn through a server "
        "kill, offline compaction and restart) instead of the P1 sweep",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="soak / replication: run for this many seconds (defaults: "
        f"{DEFAULT_SOAK_SECONDS} for --soak, "
        f"{DEFAULT_REPLICATION_SECONDS} for --replication)",
    )
    parser.add_argument(
        "--subscribers", type=int, default=DEFAULT_SOAK_SUBSCRIBERS,
        help="soak: reconnecting subscriber connections (default: %(default)s)",
    )
    parser.add_argument(
        "--joins", action="store_true",
        help="run the compiled-vs-interpreted-vs-naive join-execution "
        "sweep (P1 sizes plus a wide-join synthetic) instead of the "
        "P1 sweep",
    )
    parser.add_argument(
        "--wide-nodes", type=int, default=DEFAULT_WIDE_NODES,
        help="joins sweep: x-nodes in the wide-join synthetic base "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--replication", action="store_true",
        help="run the replicated-serving sweep (follower catch-up, replica "
        "read fanout, failover with epoch fencing) instead of the P1 sweep",
    )
    parser.add_argument(
        "--followers", type=int, default=DEFAULT_REPLICATION_FOLLOWERS,
        help="replication sweep: read replicas to attach (default: %(default)s)",
    )
    parser.add_argument(
        "--cluster", action="store_true",
        help="run the sharded-cluster sweep (read scaling across shard "
        "counts, single-shard commit overhead) instead of the P1 sweep",
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=None,
        help="cluster sweep: shard counts to sweep "
        f"(default: {' '.join(str(c) for c in DEFAULT_CLUSTER_SHARDS)})",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="run the observability-overhead sweep (P1[400] apply and a "
        "scaled serve run, metrics registry on vs off) instead of the "
        "P1 sweep",
    )
    parser.add_argument(
        "--trajectory", action="store_true",
        help="only rebuild BENCH_TRAJECTORY.json from the BENCH_PR*.json "
        "documents in the current directory",
    )
    arguments = parser.parse_args(argv)

    if arguments.trajectory:
        out = write_trajectory(".")
        document = json.loads(out.read_text(encoding="utf-8"))
        for pr, entry in document["prs"].items():
            print(f"{pr}: {entry.get('headline', entry['benchmark'])}")
        print(f"wrote {out}")
        return 0

    if arguments.obs:
        out = arguments.out or Path(DEFAULT_OBS_OUT)
        document = run_obs_sweep(repeats=arguments.repeats)
        _write_document(out, document)
        p1 = document["p1"]
        print(
            f"P1 n={p1['n_employees']}: metrics off "
            f"{p1['metrics_off']['best_s'] * 1e3:.2f} ms, on "
            f"{p1['metrics_on']['best_s'] * 1e3:.2f} ms "
            f"(ratio {document['p1_overhead_ratio_on_over_off']:.3f})"
        )
        serve = document["serve"]
        print(
            f"serve ({serve['clients']} clients, {serve['updates']} "
            f"commits): off {serve['metrics_off_seconds']:.3f} s, on "
            f"{serve['metrics_on_seconds']:.3f} s (throughput ratio "
            f"{document['serve_throughput_ratio_on_over_off']:.3f})"
        )
        print(f"wrote {out}")
        write_trajectory(".")
        return 0

    if arguments.joins:
        out = arguments.out or Path(DEFAULT_JOINS_OUT)
        document = run_joins_sweep(
            tuple(arguments.sizes), arguments.repeats,
            wide_nodes=arguments.wide_nodes,
        )
        _write_document(out, document)
        for entry in document["p1"]["results"]:
            print(
                f"P1 n={entry['n_employees']:>5}  {entry['mode']:>12}  "
                f"best {entry['best_s'] * 1000:8.2f} ms   "
                f"mean {entry['mean_s'] * 1000:8.2f} ms"
            )
        for size in document["sizes"]:
            interpreted = document["p1"][
                "speedup_compiled_over_interpreted"][str(size)]
            naive = document["p1"]["speedup_compiled_over_naive"][str(size)]
            print(
                f"P1 n={size}: compiled {interpreted:.2f}x over "
                f"interpreted, {naive:.2f}x over naive"
            )
        wide = document["wide_join"]
        for entry in wide["results"]:
            print(
                f"wide join     {entry['mode']:>12}  "
                f"best {entry['best_s'] * 1000:8.2f} ms   "
                f"mean {entry['mean_s'] * 1000:8.2f} ms"
            )
        print(
            f"wide join: compiled "
            f"{wide['speedup_compiled_over_interpreted']:.2f}x over "
            f"interpreted, {wide['speedup_compiled_over_naive']:.2f}x "
            f"over naive"
        )
        if not document["codegen_enabled"]:
            print("note: REPRO_NO_CODEGEN is set — 'compiled' degraded to "
                  "the interpreted path in this run")
        print(f"wrote {out}")
        write_trajectory(".")
        return 0

    if arguments.cluster:
        out = arguments.out or Path(DEFAULT_CLUSTER_OUT)
        document = run_cluster_sweep(
            shard_counts=(
                tuple(arguments.shards)
                if arguments.shards
                else DEFAULT_CLUSTER_SHARDS
            ),
            updates=(
                arguments.updates
                if arguments.updates is not None
                else DEFAULT_CLUSTER_UPDATES
            ),
        )
        _write_document(out, document)
        for entry in document["scaling"]:
            print(
                f"shards={entry['shards']:>2}  "
                f"reads/s {entry['reads_per_second']:8.1f}   "
                f"commits/s {entry['commits_per_second']:7.1f}   "
                f"consistent: {entry['consistent']}"
            )
        print(
            f"read scaling: "
            f"{document['read_scaling_largest_over_one']:.2f}x at "
            f"{document['read_scaling_shards']} shards over 1"
        )
        print(
            f"single-shard commits: routed "
            f"{document['routed_commits_per_second']:.1f}/s vs standalone "
            f"{document['standalone_commits_per_second']:.1f}/s (ratio "
            f"{document['commit_throughput_ratio_routed_over_standalone']:.3f})"
        )
        for failure in document["failures"]:
            print(f"  failure: {failure}")
        print(f"wrote {out}")
        write_trajectory(".")
        return 0 if not document["failures"] else 1

    if arguments.replication:
        out = arguments.out or Path(DEFAULT_REPLICATION_OUT)
        document = run_replication_sweep(
            n_followers=arguments.followers,
            duration=(
                arguments.duration
                if arguments.duration is not None
                else DEFAULT_REPLICATION_SECONDS
            ),
        )
        _write_document(out, document)
        fanout = document["read_fanout"]
        print(
            f"replication: {fanout['followers']} followers, "
            f"{fanout['reads_total']} replica reads in "
            f"{fanout['wall_seconds']:.1f} s "
            f"({document['replica_reads_per_second']:.0f}/s), "
            f"catch-up {document['replication_catchup_seconds']:.2f} s "
            f"for {document['workload']['catchup_commits']} commits"
        )
        print(
            f"failover: {document['failover_seconds'] * 1e3:.0f} ms to the "
            f"first write at epoch {document['promoted_epoch']}, "
            f"{document['lost_acknowledged_commits']} of "
            f"{document['acked_commits']} acked commits lost   "
            f"consistent: {document['consistent']}   "
            f"journal ok: {document['journal_ok']}"
        )
        for failure in document["failures"]:
            print(f"  failure: {failure}")
        print(f"wrote {out}")
        write_trajectory(".")
        return (
            0
            if document["lost_acknowledged_commits"] == 0
            and document["consistent"]
            and document["journal_ok"]
            else 1
        )

    if arguments.soak:
        out = arguments.out or Path(DEFAULT_SOAK_OUT)
        document = run_soak_sweep(
            duration=(
                arguments.duration
                if arguments.duration is not None
                else DEFAULT_SOAK_SECONDS
            ),
            n_subscribers=arguments.subscribers,
        )
        _write_document(out, document)
        print(
            f"soak: {document['wall_seconds']:.1f} s, "
            f"{document['commits']} commits "
            f"({document['commits_per_second']:.0f}/s), "
            f"{document['deltas_folded']} deltas folded "
            f"({document['lagged_resyncs']} lagged resyncs), "
            f"{document['restarts']} restart(s), "
            f"{document['reconnects']} reconnects"
        )
        print(
            f"errors: {document['retryable_errors']} retryable, "
            f"{document['non_retryable_errors']} non-retryable   "
            f"consistent: {document['consistent']}   "
            f"journal ok: {document['journal_ok']}"
        )
        for failure in document["failures"]:
            print(f"  failure: {failure}")
        print(f"wrote {out}")
        write_trajectory(".")
        return (
            0
            if document["consistent"]
            and document["journal_ok"]
            and not document["non_retryable_errors"]
            else 1
        )

    if arguments.serve:
        out = arguments.out or Path(DEFAULT_SERVE_OUT)
        updates = (
            arguments.updates
            if arguments.updates is not None
            else DEFAULT_SERVE_UPDATES
        )
        document = run_serve_sweep(
            n_clients=arguments.clients, updates=updates
        )
        _write_document(out, document)
        in_process = document["in_process"]
        print(
            f"served: {in_process['served_seconds']:.3f} s total / "
            f"{in_process['served_serving_seconds']:.3f} s serving "
            f"({in_process['served_states_per_second']:.0f} states/s, "
            f"{in_process['push_messages']} pushes, "
            f"{in_process['skipped_evaluations']} skipped evals)   "
            f"naive: {in_process['naive_seconds']:.3f} s total / "
            f"{in_process['naive_serving_seconds']:.3f} s serving"
        )
        print(
            f"serving throughput ratio served/naive: "
            f"{document['throughput_ratio_served_over_naive']:.2f}x "
            f"(total-time ratio "
            f"{in_process['total_ratio_served_over_naive']:.2f}x, "
            f"write-only {in_process['write_only_seconds']:.3f} s)"
        )
        wire = document["wire"]
        print(
            f"wire: {wire['commits_per_second']:.0f} commits/s, "
            f"{wire['pushes_per_second']:.0f} pushes/s to "
            f"{wire['clients']} clients, query round-trip "
            f"best {wire['query_roundtrip_best_s'] * 1e3:.2f} ms / "
            f"mean {wire['query_roundtrip_mean_s'] * 1e3:.2f} ms"
        )
        print(f"wrote {out}")
        write_trajectory(".")
        return 0

    if arguments.queries:
        out = arguments.out or Path(DEFAULT_QUERY_OUT)
        document = run_query_sweep(
            updates=(
                arguments.updates
                if arguments.updates is not None
                else DEFAULT_QUERY_UPDATES
            ),
            reads_per_update=arguments.reads,
        )
        _write_document(out, document)
        seconds = document["read_seconds"]
        print(
            f"reads: per-call {seconds['per_call']:.3f} s   "
            f"prepared {seconds['prepared']:.3f} s   "
            f"served {seconds['served_memoized']:.3f} s "
            f"({document['reads_per_second_served']:.0f} reads/s)"
        )
        print(
            f"speedup: prepared {document['speedup_prepared_over_per_call']:.2f}x   "
            f"served {document['speedup_served_over_per_call']:.2f}x"
        )
        for name, entry in document["per_query_head"].items():
            print(
                f"  {name:<14} indexed {entry['planned_indexed_best_s'] * 1e3:7.2f} ms  "
                f"dynamic {entry['dynamic_reference_best_s'] * 1e3:7.2f} ms  "
                f"({entry['speedup_indexed_over_dynamic']:.2f}x, "
                f"{entry['answers']} answers)"
            )
        print(f"wrote {out}")
        write_trajectory(".")
        return 0

    if arguments.store:
        out = arguments.out or Path(DEFAULT_STORE_OUT)
        document = run_store_sweep(arguments.revisions)
        _write_document(out, document)
        memory = document["memory"]
        print(
            f"chain memory: delta {memory['delta_chain_bytes'] / 1e6:.2f} MB "
            f"({memory['delta_chain_entries']} entries)  vs  full-copy "
            f"{memory['full_copy_bytes'] / 1e6:.2f} MB "
            f"({memory['full_copy_entries']} entries)  "
            f"ratio {document['memory_ratio_full_over_delta']:.1f}x"
        )
        throughput = document["throughput"]
        print(
            f"apply: cached {throughput['cached_apply_mean_s'] * 1e3:.2f} ms  "
            f"vs  cold {throughput['cold_apply_mean_s'] * 1e3:.2f} ms  "
            f"speedup {document['speedup_cached_over_cold']:.2f}x"
        )
        print(f"wrote {out}")
        write_trajectory(".")
        return 0

    out = arguments.out or Path(DEFAULT_OUT)
    document = run_p1_sweep(tuple(arguments.sizes), arguments.repeats)
    _write_document(out, document)
    for entry in document["results"]:
        print(
            f"n={entry['n_employees']:>5}  {entry['mode']:>10}  "
            f"best {entry['best_s'] * 1000:8.2f} ms   "
            f"mean {entry['mean_s'] * 1000:8.2f} ms"
        )
    for size, ratio in document["speedup_naive_over_semi_naive"].items():
        print(f"speedup n={size}: {ratio:.2f}x")
    print(f"wrote {out}")
    write_trajectory(".")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
