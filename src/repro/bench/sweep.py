"""Machine-readable performance sweeps (``python -m repro bench``).

Runs the P1 base-size scaling sweep — the full enterprise update program
(three strata, all three update kinds) against generated bases of increasing
size — once per evaluation path (semi-naive delta-driven vs the naive
reference, ``EvaluationOptions(semi_naive=...)``) in the *same* process, and
writes the timings as JSON so the performance trajectory of the engine is
comparable across PRs.  ``benchmarks/run_bench.py`` is a thin wrapper.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.core.engine import UpdateEngine
from repro.workloads.enterprise import enterprise_base, enterprise_update_program

__all__ = ["run_p1_sweep", "main"]

DEFAULT_SIZES = (25, 100, 400)
DEFAULT_REPEATS = 5
DEFAULT_OUT = "BENCH_PR1.json"


def _time_apply(engine: UpdateEngine, program, base, repeats: int) -> dict:
    engine.apply(program, base)  # warm caches (plans, parser, indexes)
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = engine.apply(program, base)
        times.append(time.perf_counter() - start)
    return {
        "best_s": min(times),
        "mean_s": sum(times) / len(times),
        "repeats": repeats,
        "result_facts": len(result.result_base),
        "new_base_facts": len(result.new_base),
    }


def run_p1_sweep(
    sizes: tuple[int, ...] = DEFAULT_SIZES, repeats: int = DEFAULT_REPEATS
) -> dict:
    """Time ``UpdateEngine.apply`` for both evaluation paths per size.

    Returns a JSON-ready document with per-(size, mode) timings and the
    naive/semi-naive speedup per size; also asserts both paths produce the
    same result base (a cheap always-on differential check).
    """
    program = enterprise_update_program(hpe_threshold=4000)
    semi = UpdateEngine()
    naive = UpdateEngine(semi_naive=False)

    results = []
    speedups = {}
    for size in sizes:
        base = enterprise_base(n_employees=size, overpaid_ratio=0.1, seed=21)
        fast_outcome = semi.apply(program, base)
        naive_outcome = naive.apply(program, base)
        if fast_outcome.result_base != naive_outcome.result_base:
            raise AssertionError(
                f"semi-naive and naive results diverge at n={size}"
            )
        fast = _time_apply(semi, program, base, repeats)
        slow = _time_apply(naive, program, base, repeats)
        results.append({"n_employees": size, "mode": "semi_naive", **fast})
        results.append({"n_employees": size, "mode": "naive", **slow})
        speedups[str(size)] = slow["best_s"] / fast["best_s"]

    return {
        "benchmark": "p1_base_size_sweep",
        "program": "enterprise-update (rules 1-4, hpe threshold 4000)",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "sizes": list(sizes),
        "results": results,
        "speedup_naive_over_semi_naive": speedups,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench", description="run the P1 scaling sweep"
    )
    parser.add_argument(
        "--out", type=Path, default=Path(DEFAULT_OUT),
        help=f"output JSON path (default: {DEFAULT_OUT})",
    )
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES)
    )
    arguments = parser.parse_args(argv)

    document = run_p1_sweep(tuple(arguments.sizes), arguments.repeats)
    arguments.out.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    for entry in document["results"]:
        print(
            f"n={entry['n_employees']:>5}  {entry['mode']:>10}  "
            f"best {entry['best_s'] * 1000:8.2f} ms   "
            f"mean {entry['mean_s'] * 1000:8.2f} ms"
        )
    for size, ratio in document["speedup_naive_over_semi_naive"].items():
        print(f"speedup n={size}: {ratio:.2f}x")
    print(f"wrote {arguments.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
