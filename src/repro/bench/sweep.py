"""Machine-readable performance sweeps (``python -m repro bench``).

Two sweeps, each writing a JSON document so the performance trajectory is
comparable across PRs (``benchmarks/run_bench.py`` is a thin wrapper):

* **P1 base-size sweep** (default, ``BENCH_PR1.json``) — the full enterprise
  update program against generated bases of increasing size, once per
  evaluation path (semi-naive delta-driven vs the naive reference).
* **Store sweep** (``--store``, ``BENCH_PR2.json``) — the versioned store's
  two claims: (a) a 200-revision delta chain of the P1 workload keeps ≥ 5×
  less memory than the full-copy chain (tracemalloc bytes, plus the
  representation-independent stored-entry count), and (b) repeated
  ``store.apply`` with the engine's cached ``CompiledProgram`` beats a cold
  ``UpdateEngine.apply`` that redoes the static analysis (safety,
  stratification, join plans) every time.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
import tracemalloc
from pathlib import Path

from repro.core.engine import UpdateEngine
from repro.workloads.enterprise import (
    enterprise_base,
    enterprise_update_program,
    paper_example_base,
    targeted_raise_program,
)

__all__ = ["run_p1_sweep", "run_store_sweep", "main"]

DEFAULT_SIZES = (25, 100, 400)
DEFAULT_REPEATS = 5
DEFAULT_OUT = "BENCH_PR1.json"
DEFAULT_STORE_OUT = "BENCH_PR2.json"
DEFAULT_STORE_REVISIONS = 200


def _time_apply(engine: UpdateEngine, program, base, repeats: int) -> dict:
    engine.apply(program, base)  # warm caches (plans, parser, indexes)
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = engine.apply(program, base)
        times.append(time.perf_counter() - start)
    return {
        "best_s": min(times),
        "mean_s": sum(times) / len(times),
        "repeats": repeats,
        "result_facts": len(result.result_base),
        "new_base_facts": len(result.new_base),
    }


def run_p1_sweep(
    sizes: tuple[int, ...] = DEFAULT_SIZES, repeats: int = DEFAULT_REPEATS
) -> dict:
    """Time ``UpdateEngine.apply`` for both evaluation paths per size.

    Returns a JSON-ready document with per-(size, mode) timings and the
    naive/semi-naive speedup per size; also asserts both paths produce the
    same result base (a cheap always-on differential check).
    """
    program = enterprise_update_program(hpe_threshold=4000)
    semi = UpdateEngine()
    naive = UpdateEngine(semi_naive=False)

    results = []
    speedups = {}
    for size in sizes:
        base = enterprise_base(n_employees=size, overpaid_ratio=0.1, seed=21)
        fast_outcome = semi.apply(program, base)
        naive_outcome = naive.apply(program, base)
        if fast_outcome.result_base != naive_outcome.result_base:
            raise AssertionError(
                f"semi-naive and naive results diverge at n={size}"
            )
        fast = _time_apply(semi, program, base, repeats)
        slow = _time_apply(naive, program, base, repeats)
        results.append({"n_employees": size, "mode": "semi_naive", **fast})
        results.append({"n_employees": size, "mode": "naive", **slow})
        speedups[str(size)] = slow["best_s"] / fast["best_s"]

    return {
        "benchmark": "p1_base_size_sweep",
        "program": "enterprise-update (rules 1-4, hpe threshold 4000)",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "sizes": list(sizes),
        "results": results,
        "speedup_naive_over_semi_naive": speedups,
    }


def _build_chain(base, program, revisions: int, *, delta_chain: bool):
    from repro.storage import StoreOptions, VersionedStore

    store = VersionedStore(
        base, options=StoreOptions(delta_chain=delta_chain, snapshot_interval=64)
    )
    for index in range(revisions):
        store.apply(program, tag=f"rev{index + 1}")
    return store


def _chain_memory(base, program, revisions: int, *, delta_chain: bool):
    """(bytes, stored_entries, store) for one revision chain, built under
    tracemalloc so only the chain's own allocations are counted."""
    gc.collect()
    tracemalloc.start()
    store = _build_chain(base, program, revisions, delta_chain=delta_chain)
    gc.collect()
    current, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return current, store.stored_entries(), store


def run_store_sweep(
    revisions: int = DEFAULT_STORE_REVISIONS,
    n_employees: int = 100,
    apply_repeats: int = 40,
) -> dict:
    """The PR 2 store benchmark; see the module docstring for the claims."""
    from repro.core.plans import rule_plan
    from repro.storage import StoreOptions, VersionedStore

    base = enterprise_base(n_employees=n_employees, overpaid_ratio=0.1, seed=21)
    program = targeted_raise_program("emp0", percent=1.0)

    # -- (a) revision-chain memory --------------------------------------
    delta_bytes, delta_entries, delta_store = _chain_memory(
        base, program, revisions, delta_chain=True
    )
    full_bytes, full_entries, full_store = _chain_memory(
        base, program, revisions, delta_chain=False
    )
    # always-on differential check: both representations expose the same
    # facts at every probed revision
    for index in (0, revisions // 2, revisions):
        if set(delta_store.base_at(index)) != set(full_store.base_at(index)):
            raise AssertionError(f"delta and full-copy chains diverge at {index}")

    # -- (b) repeated-apply throughput ----------------------------------
    enterprise_program = enterprise_update_program(hpe_threshold=4000)
    warm_store = VersionedStore(paper_example_base(), options=StoreOptions())
    warm_store.apply(enterprise_program)  # populate the compiled cache
    start = time.perf_counter()
    for _ in range(apply_repeats):
        warm_store.apply(enterprise_program)
    warm_s = (time.perf_counter() - start) / apply_repeats

    cold_engine = UpdateEngine(compile_cache_size=0)
    cold_store = VersionedStore(
        paper_example_base(), engine=cold_engine, options=StoreOptions()
    )
    cold_store.apply(enterprise_program)
    start = time.perf_counter()
    for _ in range(apply_repeats):
        rule_plan.cache_clear()  # a cold engine has no compiled join plans
        cold_store.apply(enterprise_program)
    cold_s = (time.perf_counter() - start) / apply_repeats

    return {
        "benchmark": "p2_store_sweep",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workload": {
            "base": f"enterprise(n_employees={n_employees})",
            "chain_program": "targeted-raise-emp0 (two-fact delta per revision)",
            "revisions": revisions,
            "snapshot_interval": 64,
        },
        "memory": {
            "delta_chain_bytes": delta_bytes,
            "full_copy_bytes": full_bytes,
            "delta_chain_entries": delta_entries,
            "full_copy_entries": full_entries,
        },
        "memory_ratio_full_over_delta": full_bytes / delta_bytes,
        "entry_ratio_full_over_delta": full_entries / delta_entries,
        "throughput": {
            "program": "enterprise-update (4 rules) on the paper base",
            "apply_repeats": apply_repeats,
            "cached_apply_mean_s": warm_s,
            "cold_apply_mean_s": cold_s,
        },
        "speedup_cached_over_cold": cold_s / warm_s,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench", description="run the P1 scaling or P2 store sweep"
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help=f"output JSON path (default: {DEFAULT_OUT}, "
        f"{DEFAULT_STORE_OUT} with --store)",
    )
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES)
    )
    parser.add_argument(
        "--store", action="store_true",
        help="run the versioned-store sweep (memory + repeated apply) "
        "instead of the P1 scaling sweep",
    )
    parser.add_argument(
        "--revisions", type=int, default=DEFAULT_STORE_REVISIONS,
        help="store sweep: chain length (default: %(default)s)",
    )
    arguments = parser.parse_args(argv)

    if arguments.store:
        out = arguments.out or Path(DEFAULT_STORE_OUT)
        document = run_store_sweep(arguments.revisions)
        out.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
        memory = document["memory"]
        print(
            f"chain memory: delta {memory['delta_chain_bytes'] / 1e6:.2f} MB "
            f"({memory['delta_chain_entries']} entries)  vs  full-copy "
            f"{memory['full_copy_bytes'] / 1e6:.2f} MB "
            f"({memory['full_copy_entries']} entries)  "
            f"ratio {document['memory_ratio_full_over_delta']:.1f}x"
        )
        throughput = document["throughput"]
        print(
            f"apply: cached {throughput['cached_apply_mean_s'] * 1e3:.2f} ms  "
            f"vs  cold {throughput['cold_apply_mean_s'] * 1e3:.2f} ms  "
            f"speedup {document['speedup_cached_over_cold']:.2f}x"
        )
        print(f"wrote {out}")
        return 0

    out = arguments.out or Path(DEFAULT_OUT)
    document = run_p1_sweep(tuple(arguments.sizes), arguments.repeats)
    out.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    for entry in document["results"]:
        print(
            f"n={entry['n_employees']:>5}  {entry['mode']:>10}  "
            f"best {entry['best_s'] * 1000:8.2f} ms   "
            f"mean {entry['mean_s'] * 1000:8.2f} ms"
        )
    for size, ratio in document["speedup_naive_over_semi_naive"].items():
        print(f"speedup n={size}: {ratio:.2f}x")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
