"""Rendering of experiment results as paper-style tables.

The paper has no measured tables, so the benchmarks print their own —
experiment id, workload parameters, and the observed outcome next to the
paper's stated expectation — and EXPERIMENTS.md records the same rows.
pytest-benchmark handles the statistical timing; this module handles the
human-readable reporting around it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = ["ExperimentTable", "time_callable"]


@dataclass
class ExperimentTable:
    """A fixed-column ASCII table printed under a titled rule.

    >>> table = ExperimentTable("E1", ["n", "versions", "ms"])
    >>> table.add_row([10, 10, 0.4])
    >>> print(table.render())          # doctest: +SKIP
    """

    title: str
    columns: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, values: Sequence) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_cell(value) for value in values])

    def render(self) -> str:
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        parts = [f"== {self.title} ==", line(headers), rule]
        parts.extend(line(row) for row in self.rows)
        return "\n".join(parts)

    def emit(self) -> None:
        """Print with surrounding blank lines (pytest -s friendly)."""
        print(f"\n{self.render()}\n")


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def time_callable(
    fn: Callable[[], object], *, repeat: int = 3
) -> tuple[float, object]:
    """Best-of-``repeat`` wall time in milliseconds plus the last result.

    For quick shape tables inside benchmarks; statistically robust numbers
    come from pytest-benchmark itself.
    """
    best = float("inf")
    result: object = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = (time.perf_counter() - start) * 1000.0
        best = min(best, elapsed)
    return best, result
