"""Workload generators and the paper's literal example fixtures.

* :mod:`repro.workloads.enterprise` — the employee/manager domain of the
  running example (Section 2.3, Figure 2), both the literal two-object base
  and a parametric generator for scaling benchmarks;
* :mod:`repro.workloads.genealogy` — person/parents DAGs for the recursive
  ancestor example;
* :mod:`repro.workloads.synthetic` — random object bases, update programs
  and Datalog programs for property-based tests and stress benchmarks.
"""

from repro.workloads.enterprise import (
    enterprise_base,
    enterprise_update_program,
    hypothetical_program,
    hypothetical_base,
    paper_example_base,
    paper_example_program,
    salary_raise_program,
    targeted_raise_program,
)
from repro.workloads.genealogy import ancestors_program, genealogy_base, true_ancestors
from repro.workloads.synthetic import (
    random_datalog_chain_program,
    random_insert_program,
    random_object_base,
)

__all__ = [
    "paper_example_base",
    "paper_example_program",
    "enterprise_base",
    "enterprise_update_program",
    "salary_raise_program",
    "targeted_raise_program",
    "hypothetical_base",
    "hypothetical_program",
    "genealogy_base",
    "ancestors_program",
    "true_ancestors",
    "random_object_base",
    "random_insert_program",
    "random_datalog_chain_program",
]
