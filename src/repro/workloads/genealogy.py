"""Genealogy workload for the recursive ancestor example (Section 2.3).

The example computes, via recursive ``ins`` rules, the set-valued method
``anc`` from the set-valued method ``parents``.  The generator builds a
layered DAG of persons; :func:`true_ancestors` computes the ground truth
with a plain graph traversal so tests and benchmarks can verify the rule
program's answers.
"""

from __future__ import annotations

import random

from repro.core.facts import make_fact
from repro.core.objectbase import ObjectBase
from repro.core.rules import UpdateProgram
from repro.core.terms import Oid
from repro.lang.parser import parse_object_base, parse_program

__all__ = [
    "paper_family_base",
    "genealogy_base",
    "ancestors_program",
    "true_ancestors",
]


def paper_family_base() -> ObjectBase:
    """A small, hand-checkable family tree."""
    return parse_object_base(
        """
        amy.isa -> person.   amy.parents -> bea.   amy.parents -> carl.
        bea.isa -> person.   bea.parents -> dora.
        carl.isa -> person.
        dora.isa -> person.
        """
    )


def genealogy_base(
    *,
    generations: int = 4,
    per_generation: int = 8,
    parents_per_person: int = 2,
    seed: int = 0,
) -> ObjectBase:
    """A layered person DAG: members of generation ``g`` draw their parents
    from generation ``g+1`` (deterministic for a given seed)."""
    rng = random.Random(seed)
    base = ObjectBase()
    layers = [
        [f"p{generation}_{i}" for i in range(per_generation)]
        for generation in range(generations)
    ]
    for layer in layers:
        for name in layer:
            base.add(make_fact(Oid(name), "isa", (), Oid("person")))
    for generation in range(generations - 1):
        elders = layers[generation + 1]
        for name in layers[generation]:
            count = min(parents_per_person, len(elders))
            for parent in rng.sample(elders, count):
                base.add(make_fact(Oid(name), "parents", (), Oid(parent)))
    base.ensure_exists()
    return base


def ancestors_program() -> UpdateProgram:
    """The recursive example of Section 2.3: a single stratum of two
    ``ins`` rules — parents are ancestors, and parents of ancestors are."""
    return UpdateProgram(
        parse_program(
            """
            r1: ins[X].anc -> P <= X.isa -> person / parents -> P.
            r2: ins[X].anc -> P <=
                ins(X).isa -> person / anc -> A,
                A.isa -> person / parents -> P.
            """
        ),
        "ancestors",
    )


def true_ancestors(base: ObjectBase) -> dict[str, set[str]]:
    """Ground truth by graph traversal (reference for the rule program)."""
    parents: dict[str, set[str]] = {}
    for fact in base:
        if fact.method == "parents":
            parents.setdefault(str(fact.host), set()).add(str(fact.result))

    ancestors: dict[str, set[str]] = {}

    def collect(person: str) -> set[str]:
        if person in ancestors:
            return ancestors[person]
        ancestors[person] = set()  # cycle guard (generator builds DAGs)
        found: set[str] = set()
        for parent in parents.get(person, ()):
            found.add(parent)
            found |= collect(parent)
        ancestors[person] = found
        return found

    people = {str(f.host) for f in base if f.method == "isa"}
    return {person: collect(person) for person in sorted(people)}
