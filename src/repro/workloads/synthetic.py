"""Synthetic workloads for property tests and stress benchmarks.

Random object bases with controllable shape, random *safe, stratifiable*
update programs (insert-only and chained-version shapes whose expected
outcomes are computable independently), and random Datalog chain programs
for the semi-naive/naive equivalence experiment (E12).
"""

from __future__ import annotations

import random

from repro.core.facts import make_fact
from repro.core.objectbase import ObjectBase
from repro.core.rules import UpdateProgram
from repro.core.terms import Oid
from repro.datalog.ast import DatalogLiteral, DatalogProgram, DatalogRule, PredicateAtom
from repro.datalog.database import Database
from repro.core.terms import Var
from repro.lang.parser import parse_program

__all__ = [
    "random_object_base",
    "random_insert_program",
    "random_update_program",
    "version_chain_program",
    "random_datalog_chain_program",
    "random_edge_database",
]


def random_object_base(
    *,
    n_objects: int = 50,
    methods: tuple[str, ...] = ("color", "size", "link"),
    facts_per_object: int = 3,
    numeric_ratio: float = 0.5,
    seed: int = 0,
) -> ObjectBase:
    """A random base: each object gets ``facts_per_object`` applications of
    random methods; results are numbers or other objects."""
    rng = random.Random(seed)
    names = [f"o{i}" for i in range(n_objects)]
    base = ObjectBase()
    for name in names:
        for _ in range(facts_per_object):
            method = rng.choice(methods)
            if rng.random() < numeric_ratio:
                result = Oid(rng.randint(0, 1000))
            else:
                result = Oid(rng.choice(names))
            base.add(make_fact(Oid(name), method, (), result))
    base.ensure_exists()
    return base


def random_insert_program(
    *,
    n_rules: int = 4,
    methods: tuple[str, ...] = ("color", "size", "link"),
    tags: tuple[str, ...] = ("alpha", "beta", "gamma"),
    seed: int = 0,
) -> UpdateProgram:
    """Random insert-only rules: ``ins[X].tag -> t <= X.m -> Y``.

    Insert-only programs are monotone, always stratifiable, always
    version-linear — ideal for differential property tests (the expected
    result is a simple relational computation).
    """
    rng = random.Random(seed)
    lines = []
    for index in range(n_rules):
        method = rng.choice(methods)
        tag = rng.choice(tags)
        lines.append(f"g{index}: ins[X].tag -> {tag} <= X.{method} -> Y.")
    return UpdateProgram(parse_program("\n".join(lines)), "random-inserts")


def random_update_program(
    *, seed: int = 0, allow_nonlinear: bool = False
) -> UpdateProgram:
    """A random safe, stratifiable update program mixing all three update
    kinds, negation, built-ins and (sometimes) recursion.

    Shapes are drawn from three families, all version-linear by
    construction (mirroring the disjointness trick of the paper's rules 3/4
    — a created version gets at most one successor kind, guarded by
    negation where two rules could collide):

    * **pipeline** — the enterprise shape: ``mod`` rules on ``size``/
      ``color``, then either a guarded ``del``/``del[..].*`` on ``mod(X)``
      or a negation-guarded ``ins`` classification, then optionally one
      more ``ins`` level;
    * **recursion** — the ancestors shape over ``link``: a base rule plus a
      rule reading its own ``ins`` version, optionally a second stratum on
      top;
    * **chain** — :func:`version_chain_program` with a random depth.

    With ``allow_nonlinear=True`` a fourth family occasionally produces a
    *branching* program (two successor kinds for the same version) so that
    error behaviour can be compared differentially as well.
    """
    rng = random.Random(seed)
    family = rng.randrange(4 if allow_nonlinear else 3)

    if family == 0:
        lines = []
        guard = rng.choice(["", f", S > {rng.randint(0, 700)}", f", S < {rng.randint(300, 1000)}"])
        lines.append(
            f"m1: mod[X].size -> (S, S2) <= X.size -> S{guard}, "
            f"S2 = S + {rng.randint(1, 100)}."
        )
        if rng.random() < 0.4:
            lines.append(
                f"m2: mod[X].color -> (C, {rng.randint(0, 9)}) <= "
                f"X.color -> C, X.size -> S, S > {rng.randint(0, 900)}."
            )
        tail = rng.randrange(3)
        if tail >= 1:
            if rng.random() < 0.5:
                lines.append(
                    f"d1: del[mod(X)].color -> C <= mod(X).color -> C, "
                    f"mod(X).size -> S, S > {rng.randint(200, 900)}."
                )
            else:
                lines.append(
                    f"d1: del[mod(X)].* <= mod(X).size -> S, "
                    f"S > {rng.randint(400, 1100)}."
                )
            # The rule-4 trick: the ins level excludes exactly the objects
            # the delete fired on, so mod(X) keeps a single successor.
            lines.append(
                "c1: ins[mod(X)].cls -> big <= mod(X).color -> C, "
                f"mod(X).size -> S, S > {rng.randint(0, 500)}, "
                "not del[mod(X)].color -> C."
            )
        if tail == 2:
            lines.append(
                "x1: ins[ins(mod(X))].deep -> yes <= ins(mod(X)).cls -> big."
            )
        return UpdateProgram(parse_program("\n".join(lines)), f"pipeline-{seed}")

    if family == 1:
        lines = [
            "r1: ins[X].reach -> Y <= X.link -> Y.",
            "r2: ins[X].reach -> Z <= ins(X).reach -> Y, Y.link -> Z.",
        ]
        if rng.random() < 0.5:
            lines.append(
                f"r3: ins[ins(X)].far -> yes <= ins(X).reach -> Y, "
                f"Y.size -> S, S > {rng.randint(0, 800)}."
            )
        if rng.random() < 0.4:
            lines.append(
                "r4: ins[X].reach -> X <= X.link -> Y, not Y.size -> 0."
            )
        return UpdateProgram(parse_program("\n".join(lines)), f"recursion-{seed}")

    if family == 2:
        return version_chain_program(rng.randint(2, 6))

    # Deliberately non-linear: mod(X) and ins(X) branch off the same X.
    lines = [
        f"m1: mod[X].size -> (S, S2) <= X.size -> S, S2 = S + {rng.randint(1, 50)}.",
        f"t1: ins[X].tag -> hot <= X.size -> S, S > {rng.randint(0, 400)}.",
    ]
    return UpdateProgram(parse_program("\n".join(lines)), f"branching-{seed}")


def version_chain_program(k: int, *, method: str = "stamp") -> UpdateProgram:
    """The Figure 1 shape: ``k`` consecutive groups of updates on every
    object, so the final VID is a depth-``k`` chain ``α_k(...α_1(o))``.

    Group 1 inserts an undeletable counter ``tag -> 0``; later groups
    insert ``stamp -> i``, modify the ``tag`` (every third group), or
    delete all stamps (every fifth group).  The mod/del cadence guarantees
    every group's body is satisfiable — a modify always finds the ``tag``,
    and between two delete groups at least one insert refills the stamps —
    so the chain reaches depth ``k`` for every ``k``.
    """
    if k < 1:
        raise ValueError("need at least one update group")
    rules = [f"g1: ins[X].tag -> 0 <= X.exists -> X."]
    prefix = "ins(X)"
    for i in range(2, k + 1):
        if i % 5 == 0:
            rules.append(
                f"g{i}: del[{prefix}].{method} -> V <= "
                f"{prefix}.{method} -> V, {prefix}.exists -> X."
            )
            prefix = f"del({prefix})"
        elif i % 3 == 0:
            rules.append(
                f"g{i}: mod[{prefix}].tag -> (V, V2) <= "
                f"{prefix}.tag -> V, V2 = V + 1, {prefix}.exists -> X."
            )
            prefix = f"mod({prefix})"
        else:
            rules.append(
                f"g{i}: ins[{prefix}].{method} -> {i} <= {prefix}.exists -> X."
            )
            prefix = f"ins({prefix})"
    return UpdateProgram(parse_program("\n".join(rules)), f"chain-{k}")


def random_edge_database(
    *, n_nodes: int = 30, n_edges: int = 60, seed: int = 0
) -> Database:
    """A random directed graph as an ``edge/2`` EDB."""
    rng = random.Random(seed)
    database = Database()
    names = [f"n{i}" for i in range(n_nodes)]
    for _ in range(n_edges):
        a, b = rng.choice(names), rng.choice(names)
        database.add("edge", (Oid(a), Oid(b)))
    return database


def random_datalog_chain_program(
    *, n_idb: int = 3, negated_tail: bool = False, seed: int = 0
) -> DatalogProgram:
    """Layered Datalog over ``edge/2``: ``p0`` = transitive closure, each
    ``p{i}`` joins the previous layer with another edge hop; optionally a
    final stratum with negation.  Used for naive == semi-naive equivalence
    (E12) on random graphs."""
    rng = random.Random(seed)
    X, Y, Z = Var("X"), Var("Y"), Var("Z")
    rules = [
        DatalogRule(PredicateAtom("p0", (X, Y)), (DatalogLiteral(PredicateAtom("edge", (X, Y))),)),
        DatalogRule(
            PredicateAtom("p0", (X, Z)),
            (
                DatalogLiteral(PredicateAtom("p0", (X, Y))),
                DatalogLiteral(PredicateAtom("edge", (Y, Z))),
            ),
        ),
    ]
    for i in range(1, n_idb):
        previous = f"p{i - 1}"
        flip = rng.random() < 0.5
        body = (
            DatalogLiteral(PredicateAtom(previous, (X, Y))),
            DatalogLiteral(PredicateAtom("edge", (Y, Z) if flip else (Z, Y))),
        )
        rules.append(DatalogRule(PredicateAtom(f"p{i}", (X, Z)), body))
    if negated_tail:
        rules.append(
            DatalogRule(
                PredicateAtom("isolated", (X, Y)),
                (
                    DatalogLiteral(PredicateAtom("edge", (X, Y))),
                    DatalogLiteral(PredicateAtom("p0", (Y, X)), False),
                ),
            )
        )
    return DatalogProgram(rules, "random-chain")
