"""The enterprise workload — the paper's running example, literal and scaled.

Section 2.3: "Each employee gets a 10% salary-raise and those in a
managerial position an extra $200.  Afterwards all those employees are
fired, who make more than any of their superiors, and finally those of the
remaining ones, who make more than $4500, are grouped into a class called
hpe (high-paid-employees)."

This module provides the literal phil/bob base of Figure 2 (with the $4200
salary of the main text and the $4100 variant of Section 2.4), the 4-rule
update program, and a deterministic generator that scales the same shape to
``n`` employees under a manager hierarchy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.facts import make_fact
from repro.core.objectbase import ObjectBase
from repro.core.rules import UpdateProgram
from repro.core.terms import Oid
from repro.lang.parser import parse_object_base, parse_program

__all__ = [
    "paper_example_base",
    "paper_example_program",
    "salary_raise_program",
    "targeted_raise_program",
    "hypothetical_base",
    "hypothetical_program",
    "EnterpriseConfig",
    "enterprise_base",
    "enterprise_update_program",
]

_PAPER_PROGRAM = """
rule1: mod[E].sal -> (S, S2) <=
    E.isa -> empl / pos -> mgr / sal -> S,
    S2 = S * 1.1 + 200.

rule2: mod[E].sal -> (S, S2) <=
    E.isa -> empl / sal -> S,
    not E.pos -> mgr,
    S2 = S * 1.1.

rule3: del[mod(E)].* <=
    mod(E).isa -> empl / boss -> B / sal -> SE,
    mod(B).isa -> empl / sal -> SB,
    SE > SB.

rule4: ins[mod(E)].isa -> hpe <=
    mod(E).isa -> empl / sal -> S,
    S > 4500,
    not del[mod(E)].isa -> empl.
"""


def paper_example_base(*, bob_salary: int = 4200) -> ObjectBase:
    """The Figure 2 base: manager phil at $4000, employee bob under him.

    ``bob_salary=4200`` is the main-text scenario (bob gets fired);
    ``bob_salary=4100`` is the Section 2.4 variant (bob survives the raise
    and must *not* be fired — the control anomaly of experiment E6).
    """
    return parse_object_base(
        f"""
        phil.isa -> empl.   phil.pos -> mgr.    phil.sal -> 4000.
        bob.isa -> empl.    bob.sal -> {bob_salary}.   bob.boss -> phil.
        """
    )


def paper_example_program() -> UpdateProgram:
    """Rules 1-4 of Section 2.3 (raise, raise, fire, classify)."""
    return UpdateProgram(parse_program(_PAPER_PROGRAM), "enterprise-update")


def salary_raise_program(*, percent: float = 10.0) -> UpdateProgram:
    """The single-rule example of Section 2.1: a flat percentage raise that
    provably applies exactly once per employee."""
    factor = 1.0 + percent / 100.0
    return UpdateProgram(
        parse_program(
            f"""
            raise: mod[E].sal -> (S, S2) <=
                E.isa -> empl, E.sal -> S, S2 = S * {factor}.
            """
        ),
        "salary-raise",
    )


def targeted_raise_program(
    employee: str = "emp0", *, percent: float = 1.0
) -> UpdateProgram:
    """A raise for one named employee only — the store benchmark's
    "small transaction": each application changes a two-fact delta
    (``sal`` out, ``sal`` in) however large the surrounding base is."""
    factor = 1.0 + percent / 100.0
    return UpdateProgram(
        parse_program(
            f"""
            raise: mod[{employee}].sal -> (S, S2) <=
                {employee}.sal -> S, S2 = S * {factor}.
            """
        ),
        f"targeted-raise-{employee}",
    )


def hypothetical_base() -> ObjectBase:
    """A small base for the hypothetical-reasoning example of Section 2.3:
    peter's factor makes him overtake anna after the what-if raise."""
    return parse_object_base(
        """
        peter.isa -> empl.  peter.sal -> 100.  peter.factor -> 3.
        anna.isa -> empl.   anna.sal -> 120.   anna.factor -> 2.
        """
    )


def hypothetical_program() -> UpdateProgram:
    """Section 2.3's what-if program: raise, revert, judge on the raised
    version — footnote 3's stratification {r1} < {r2} < {r3} < {r4}."""
    return UpdateProgram(
        parse_program(
            """
            rule1: mod[E].sal -> (S, S2) <=
                E.sal -> S / factor -> F, S2 = S * F.
            rule2: mod[mod(E)].sal -> (S2, S) <=
                mod(E).sal -> S2, E.sal -> S.
            rule3: ins[mod(mod(peter))].richest -> no <=
                mod(E).sal -> SE, mod(peter).sal -> SP, SE > SP.
            rule4: ins[ins(mod(mod(peter)))].richest -> yes <=
                not ins(mod(mod(peter))).richest -> no.
            """
        ),
        "hypothetical",
    )


@dataclass(frozen=True)
class EnterpriseConfig:
    """Shape of a generated enterprise.

    ``n_employees`` staff are organised under ``n_employees * manager_ratio``
    managers forming a forest of the given depth; salaries are uniform in
    ``salary_range`` with managers drawn from the upper half.
    ``overpaid_ratio`` of non-managers are bumped above their boss so that
    rule 3 has work to do.
    """

    n_employees: int = 100
    manager_ratio: float = 0.2
    salary_range: tuple[int, int] = (2000, 5000)
    overpaid_ratio: float = 0.1
    seed: int = 0


def enterprise_base(config: EnterpriseConfig | None = None, **overrides) -> ObjectBase:
    """Deterministically generate an enterprise object base.

    Every employee has ``isa -> empl`` and ``sal``; managers additionally
    ``pos -> mgr``; every non-root employee has a ``boss`` that is a
    manager.  The same config always yields the same base (seeded RNG).
    """
    if config is None:
        config = EnterpriseConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config or keyword overrides, not both")
    rng = random.Random(config.seed)
    low, high = config.salary_range
    mid = (low + high) // 2

    n_managers = max(1, int(config.n_employees * config.manager_ratio))
    base = ObjectBase()

    managers = [f"mgr{i}" for i in range(n_managers)]
    salaries: dict[str, int] = {}
    for name in managers:
        salary = rng.randint(mid, high)
        salaries[name] = salary
        _add_employee(base, name, salary, manager=True)

    # managers report to managers (a forest rooted at mgr0)
    for index, name in enumerate(managers[1:], start=1):
        boss = managers[rng.randrange(index)]
        _add_boss(base, name, boss)

    n_staff = config.n_employees - n_managers
    for i in range(n_staff):
        name = f"emp{i}"
        boss = managers[rng.randrange(n_managers)]
        if rng.random() < config.overpaid_ratio:
            salary = salaries[boss] + rng.randint(1, 500)  # rule 3 bait
        else:
            salary = rng.randint(low, max(low + 1, salaries[boss] - 1))
        salaries[name] = salary
        _add_employee(base, name, salary, manager=False)
        _add_boss(base, name, boss)

    base.ensure_exists()
    return base


def _add_employee(base: ObjectBase, name: str, salary: int, *, manager: bool) -> None:
    host = Oid(name)
    base.add(make_fact(host, "isa", (), Oid("empl")))
    base.add(make_fact(host, "sal", (), Oid(salary)))
    if manager:
        base.add(make_fact(host, "pos", (), Oid("mgr")))


def _add_boss(base: ObjectBase, name: str, boss: str) -> None:
    base.add(make_fact(Oid(name), "boss", (), Oid(boss)))


def enterprise_update_program(*, hpe_threshold: int = 4500) -> UpdateProgram:
    """The Section 2.3 program with a configurable hpe threshold (scaled
    bases use different salary ranges)."""
    text = _PAPER_PROGRAM.replace("4500", str(hpe_threshold))
    return UpdateProgram(parse_program(text), "enterprise-update")
