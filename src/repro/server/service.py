"""`StoreService`: MVCC sessions and optimistic transactions over a store.

The paper's update semantics assumes one mutator: ``apply`` maps ``ob`` to
``ob'`` in isolation.  This module mediates *many* readers and writers over
one :class:`~repro.storage.history.VersionedStore` with the classic MVCC
recipe, built entirely from machinery the store already has:

* **Snapshot reads for free.**  A :class:`Session` pins the head revision
  index at ``begin()``; every read runs against that revision's frozen
  shared view (``base_at`` — structural sharing makes the pin literally a
  list index, no copy).  Readers never block writers and vice versa.
* **Optimistic commits.**  A session stages update programs and commits
  through a strict FIFO writer queue.  Validation intersects the session's
  *read/write footprint* — the :class:`~repro.core.plans.QuerySignature` of
  every query it ran plus the :func:`~repro.core.plans.program_signature`
  of every staged program — against the exact ``(added, removed)`` deltas
  committed since its pinned revision.  A fired trigger means a concurrent
  commit may have changed something this transaction read, and a
  :class:`~repro.server.errors.ConflictError` (retryable) is raised; a
  clean validation proves the staged programs read nothing the interim
  commits touched, so evaluating them against the *current* head is
  equivalent to evaluating at the pin — first-committer-wins
  serializability, the causal-rejection ordering problem of Eiter et al.
  resolved by commit order.
* **Durability.**  A service opened over a journal directory appends every
  committed revision (``append_revision``); a restart replays the journal
  (``StoreService.open``) and resumes exactly where the chain ended.

Commit batches are atomic: all staged programs are evaluated first (each
against the previous one's result, starting from the head), and only then
committed — an evaluation error anywhere commits nothing.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Sequence

from repro.core.caches import cache_stats
from repro.core.objectbase import Delta, ObjectBase
from repro.obs import metrics as _obs
from repro.obs import slowlog as _slowlog
from repro.core.plans import QuerySignature, program_signature
from repro.core.query import Answer, PreparedQuery
from repro.core.rules import UpdateProgram
from repro.server.errors import (
    ConflictError,
    NotPrimaryError,
    ServerBusyError,
    SessionError,
    StaleEpochError,
)
from repro.storage.history import StoreRevision, VersionedStore
from repro.storage.serialize import (
    DurabilityOptions,
    append_revision,
    load_store,
    save_store,
)

__all__ = ["Session", "CommitOutcome", "StoreService"]


def _deep_snapshot(value, _retries: int = 4):
    """Recursively copy a stats structure into fresh dicts/lists.

    Stats sub-structures (cache registries, subscription counters) are
    mutated by concurrent commits without a lock; iterating one mid-commit
    can raise ``RuntimeError: dictionary changed size during iteration``.
    Copying shrinks the window to a single dict iteration and retries it
    on a race, so callers get a stable structure that is safe to serialize
    at leisure.
    """
    if isinstance(value, dict):
        for attempt in range(_retries):
            try:
                items = list(value.items())
                break
            except RuntimeError:  # pragma: no cover - needs an exact race
                if attempt == _retries - 1:
                    raise
        return {key: _deep_snapshot(inner) for key, inner in items}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_deep_snapshot(inner) for inner in value]
    return value


class _FIFOLock:
    """A strict first-come-first-served mutual-exclusion lock.

    ``threading.Lock`` makes no fairness promise; the ISSUE's commit
    protocol wants writers *serialized in arrival order* so a burst of
    optimistic committers cannot starve one session indefinitely.  Tickets
    queue in a deque; each waiter sleeps until its ticket reaches the
    front.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._tickets: deque[object] = deque()
        self._holder: object | None = None

    def acquire(self, timeout: float | None = None) -> bool:
        """Take the lock in arrival order; ``False`` on timeout (the
        ticket is withdrawn, so a timed-out waiter never blocks the
        queue behind it)."""
        ticket = object()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            self._tickets.append(ticket)
            while self._holder is not None or self._tickets[0] is not ticket:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._tickets.remove(ticket)
                        self._condition.notify_all()
                        return False
                self._condition.wait(remaining)
            self._tickets.popleft()
            self._holder = ticket
        return True

    def release(self) -> None:
        with self._condition:
            self._holder = None
            self._condition.notify_all()

    def __enter__(self) -> "_FIFOLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class CommitOutcome:
    """What one successful commit produced.

    ``revisions`` are the appended :class:`StoreRevision` objects (one per
    staged program, in stage order); ``added``/``removed`` aggregate their
    fact counts for quick reporting.
    """

    __slots__ = ("revisions",)

    def __init__(self, revisions: Sequence[StoreRevision]) -> None:
        self.revisions = tuple(revisions)

    @property
    def revision(self) -> StoreRevision:
        """The last (newest) revision of the batch."""
        return self.revisions[-1]

    @property
    def added(self) -> int:
        return sum(len(r.added) for r in self.revisions)

    @property
    def removed(self) -> int:
        return sum(len(r.removed) for r in self.revisions)


#: Session lifecycle states.
OPEN, COMMITTED, ABORTED = "open", "committed", "aborted"


class Session:
    """One MVCC transaction: a pinned read view plus staged writes.

    Obtained from :meth:`StoreService.begin`.  All reads
    (:meth:`query`, :meth:`base`) observe the revision that was the head at
    ``begin()`` time, regardless of interim commits; every query's
    dependency signature is recorded as the session's *read footprint* for
    commit-time validation.  ``stage()`` queues update programs;
    ``commit()`` runs the optimistic protocol (and raises
    :class:`ConflictError` when validation fails — the session is dead
    then, begin a fresh one to retry).
    """

    __slots__ = (
        "service", "id", "pinned", "state",
        "_signatures", "_staged", "conflict",
    )

    def __init__(self, service: "StoreService", session_id: str, pinned: int):
        self.service = service
        self.id = session_id
        self.pinned = pinned
        self.state = OPEN
        self._signatures: list[QuerySignature] = []
        self._staged: list[UpdateProgram] = []
        self.conflict: ConflictError | None = None

    # -- reading -----------------------------------------------------------
    def base(self) -> ObjectBase:
        """The pinned revision's base (frozen shared view, no copy)."""
        return self.service.store.base_at(self.pinned)

    def query(self, query) -> list[Answer]:
        """Answer a conjunctive query against the pinned revision and add
        its dependency signature to the session's read footprint.

        Always evaluated against the pinned base — never routed to the
        store's head memo, whose "head" can move between the check and the
        read when another thread commits (``base_at`` pairs index and base
        atomically, so the pin holds even mid-commit)."""
        self._check_open()
        prepared = self.service.store.prepare(query)
        self._signatures.append(prepared.signature)
        return prepared.run(self.base())

    # -- writing -----------------------------------------------------------
    def stage(self, program) -> "Session":
        """Queue an update program (text or :class:`UpdateProgram`) to run
        at commit; its full read footprint joins the validation set."""
        self._check_open()
        program = self.service.coerce_program(program)
        self._staged.append(program)
        self._signatures.append(program_signature(program))
        return self

    @property
    def staged(self) -> tuple[UpdateProgram, ...]:
        return tuple(self._staged)

    def commit(self, *, tag: str = "") -> CommitOutcome:
        """Validate and commit the staged programs (see the module doc).

        Raises :class:`ConflictError` when a delta committed since the
        pinned revision intersects this session's footprint; the session is
        finished either way.
        """
        self._check_open()
        if not self._staged:
            raise SessionError(
                f"session {self.id} has nothing staged; use stage() before "
                f"commit(), or abort() to discard the session"
            )
        return self.service._commit_session(self, tag)

    def abort(self) -> None:
        """Discard the session (idempotent; committed sessions stay so)."""
        if self.state == OPEN:
            self.state = ABORTED

    def _check_open(self) -> None:
        if self.state != OPEN:
            raise SessionError(f"session {self.id} is already {self.state}")

    def _validate(self, interim: Sequence[StoreRevision]) -> None:
        """First-committer-wins check: no interim delta may fire any
        signature of this session's footprint."""
        for revision in interim:
            delta = self.service._revision_delta(revision)
            for signature in self._signatures:
                if signature.affected_by(delta):
                    raise ConflictError(
                        f"session {self.id} (pinned at revision "
                        f"{self.pinned}) conflicts with revision "
                        f"{revision.index} [{revision.tag}]: its delta "
                        f"intersects the session's read/write footprint",
                        pinned=self.pinned,
                        conflicting_index=revision.index,
                        conflicting_tag=revision.tag,
                    )


class StoreService:
    """The concurrent serving facade over one :class:`VersionedStore`.

    One instance mediates every reader and writer of a store (the asyncio
    server holds exactly one); it owns the FIFO writer queue, the optional
    journal binding, and the push-subscription manager
    (:class:`~repro.server.subscriptions.SubscriptionManager`).

    >>> service = StoreService(VersionedStore(base))        # doctest: +SKIP
    >>> session = service.begin()                           # doctest: +SKIP
    >>> session.query("E.sal -> S")                         # doctest: +SKIP
    >>> session.stage(program).commit(tag="raise")          # doctest: +SKIP
    """

    def __init__(
        self,
        store: VersionedStore,
        *,
        journal_dir=None,
        durability: DurabilityOptions | None = None,
        write_timeout: float | None = None,
        role: str = "primary",
        shard_id: int | None = None,
        shard_count: int | None = None,
    ) -> None:
        from repro.server.subscriptions import SubscriptionManager

        self.store = store
        self.journal_dir = journal_dir
        self.durability = durability
        #: Position in a hash-partitioned cluster (``repro cluster``), or
        #: ``None`` for a standalone/replica-set node.  Routers verify the
        #: declared identity at connect time so a misordered member list
        #: fails loudly instead of scattering facts to the wrong shards.
        self.shard_id = shard_id
        self.shard_count = shard_count
        #: Seconds a commit may wait in the FIFO writer queue before the
        #: service sheds it with a retryable :class:`ServerBusyError`
        #: (``None`` = wait forever, the embedded-single-writer default).
        self.write_timeout = write_timeout
        #: ``"primary"`` (accepts commits) or ``"follower"`` (read-only,
        #: fed by a replication stream; see :mod:`repro.replication`).
        self.role = role
        #: Writes from an epoch below this are fenced off (``repl-fence``).
        self._fenced_epoch = 0
        #: Journal lines published to replication streams, lifetime total.
        self._repl_streamed = 0
        self._repl_listeners: list[Callable[[StoreRevision, bool], None]] = []
        #: Extra ``stats()["replication"]`` fields (a follower installs its
        #: lag/heartbeat view here); zero-argument callable returning a dict.
        self.replication_info: Callable[[], dict] | None = None
        #: The node-control surface behind ``repl-promote``/``repl-retarget``
        #: (a :class:`repro.replication.follower.Follower` installs itself).
        self.replication_control = None
        self._journal_error: str | None = None
        self._writer_queue = _FIFOLock()
        self._state_lock = threading.Lock()
        self._session_counter = 0
        self._commits = 0
        self._conflicts = 0
        self._deltas: dict[int, Delta] = {}
        self.subscriptions = SubscriptionManager(
            store, delta_source=self._revision_delta
        )

    # -- construction ------------------------------------------------------
    @classmethod
    def open(
        cls,
        directory,
        *,
        engine=None,
        options=None,
        durability: DurabilityOptions | None = None,
        write_timeout: float | None = None,
        shard_id: int | None = None,
        shard_count: int | None = None,
    ) -> "StoreService":
        """Open a journal directory as a service: the journal is replayed
        into a store (restart recovery — the service is the journal's
        writer, so torn/duplicated tail lines are repaired on disk here)
        and every future commit appends under ``durability``."""
        store = load_store(directory, engine=engine, options=options, repair=True)
        return cls(
            store,
            journal_dir=directory,
            durability=durability,
            write_timeout=write_timeout,
            shard_id=shard_id,
            shard_count=shard_count,
        )

    @classmethod
    def create(
        cls,
        base: ObjectBase,
        directory,
        *,
        tag: str = "initial",
        durability: DurabilityOptions | None = None,
        write_timeout: float | None = None,
        shard_id: int | None = None,
        shard_count: int | None = None,
        **store_kwargs,
    ) -> "StoreService":
        """Initialize a fresh journal directory from ``base`` and serve it."""
        store = VersionedStore(base, tag=tag, **store_kwargs)
        save_store(store, directory, durability=durability)
        return cls(
            store,
            journal_dir=directory,
            durability=durability,
            write_timeout=write_timeout,
            shard_id=shard_id,
            shard_count=shard_count,
        )

    # -- coercion helpers --------------------------------------------------
    @staticmethod
    def coerce_program(program) -> UpdateProgram:
        """Accept an :class:`UpdateProgram` or concrete-syntax text."""
        if isinstance(program, UpdateProgram):
            return program
        from repro.lang.parser import parse_program  # lazy: lang sits above core

        return parse_program(program)

    # -- reading -----------------------------------------------------------
    def query(self, query) -> list[Answer]:
        """Answer against the current head, memoized per revision (the
        store's prepared-query serving path)."""
        start = time.perf_counter()
        answers = self.store.query(query)
        elapsed = time.perf_counter() - start
        _obs.observe("service_query_seconds", elapsed)
        _slowlog.maybe_record(
            "query", elapsed, detail=str(query), answers=len(answers)
        )
        return answers

    def prepare(self, query, *, name: str | None = None) -> PreparedQuery:
        return self.store.prepare(query, name=name)

    # -- transactions ------------------------------------------------------
    def begin(self) -> Session:
        """Start an MVCC session pinned at the current head revision."""
        with self._state_lock:
            self._session_counter += 1
            session_id = f"s{self._session_counter}"
        return Session(self, session_id, len(self.store) - 1)

    def apply(self, program, *, tag: str = "") -> CommitOutcome:
        """One-shot autocommit: serialize behind the writer queue and run
        ``program`` against the head (never conflicts — it has no pin)."""
        program = self.coerce_program(program)
        with self._writer():
            return self._commit_programs([program], tag)

    def run_transaction(
        self,
        work: Callable[[Session], object],
        *,
        attempts: int = 5,
        tag: str = "",
    ) -> CommitOutcome:
        """The retry loop every optimistic client wants: begin a session,
        run ``work(session)`` (reads + stages), commit; on
        :class:`ConflictError` begin a fresh session and try again, up to
        ``attempts`` times."""
        last: ConflictError | None = None
        for _attempt in range(max(1, attempts)):
            session = self.begin()
            try:
                work(session)
                return session.commit(tag=tag)
            except ConflictError as conflict:
                last = conflict
        raise last

    # -- replication & epoch fencing ---------------------------------------
    @property
    def epoch(self) -> int:
        """The fencing epoch every new commit is stamped with."""
        return self.store.epoch

    def check_epoch(self, min_epoch: int | None) -> None:
        """Reject a write whose client has already seen a newer promotion.

        Replica-set clients stamp mutations with the highest epoch they
        have observed; a zombie primary (still at the old epoch after a
        failover it never heard about) fails the write instead of forking
        the history."""
        if min_epoch is None:
            return
        if self.epoch < min_epoch:
            raise StaleEpochError(
                f"write demands epoch >= {min_epoch} but this node is at "
                f"epoch {self.epoch}; a newer primary has been promoted — "
                f"retry against it",
                current_epoch=self.epoch,
                required_epoch=min_epoch,
            )

    def fence(self, epoch: int) -> bool:
        """Fence writes below ``epoch`` (the promotion's edict to the old
        primary).  Returns ``True`` when this node is now fenced — i.e. its
        own epoch is older and every further commit raises
        :class:`StaleEpochError` until a (re-)promotion lifts it."""
        with self._state_lock:
            if epoch > self._fenced_epoch:
                self._fenced_epoch = epoch
        return self.store.epoch < self._fenced_epoch

    def promote(
        self,
        *,
        epoch: int | None = None,
        journal_dir=None,
        durability: DurabilityOptions | None = None,
    ) -> int:
        """Make this node the writable primary under a new, higher epoch.

        Bumps the store's epoch past everything this node has seen (its own
        chain, any fence, an explicit ``epoch`` floor from a supervisor) so
        the first post-promotion commit stamps a strictly newer epoch into
        the journal and the old primary's unreplicated tail can never be
        confused with the new history.  A follower binds its journal
        directory here (``journal_dir``) so commits start appending.
        """
        with self._writer():
            new_epoch = max(
                self.store.epoch + 1, self._fenced_epoch, epoch or 0
            )
            self.store.epoch = new_epoch
            self.role = "primary"
            if journal_dir is not None:
                self.journal_dir = journal_dir
                if durability is not None:
                    self.durability = durability
            return new_epoch

    def add_replication_listener(
        self, listener: Callable[[StoreRevision, bool], None]
    ) -> Callable[[StoreRevision, bool], None]:
        """Register ``listener(revision, has_snapshot)`` to run after each
        commit's journal append succeeds — i.e. only for revisions that are
        durable on this node, so a follower can never hold a line its
        primary lost.  The caller must serialize registration against
        in-flight commits (attach under :meth:`_writer`, as the replication
        hub does)."""
        self._repl_listeners.append(listener)
        return listener

    def remove_replication_listener(self, listener) -> None:
        try:
            self._repl_listeners.remove(listener)
        except ValueError:
            pass

    @contextmanager
    def _writer(self):
        """Hold the FIFO writer queue, shedding with a retryable
        :class:`ServerBusyError` when ``write_timeout`` elapses first."""
        if not self._writer_queue.acquire(self.write_timeout):
            raise ServerBusyError(
                f"writer queue still busy after {self.write_timeout}s; "
                f"the commit was shed — back off and retry"
            )
        try:
            yield
        finally:
            self._writer_queue.release()

    def _commit_session(self, session: Session, tag: str) -> CommitOutcome:
        with self._writer():
            interim = self.store.revisions()[session.pinned + 1:]
            validate_start = time.perf_counter()
            try:
                session._validate(interim)
            except ConflictError as conflict:
                session.state = ABORTED
                session.conflict = conflict
                with self._state_lock:
                    self._conflicts += 1
                _obs.inc("server_conflicts")
                raise
            _obs.observe(
                "commit_phase_seconds",
                time.perf_counter() - validate_start,
                phase="validate",
            )
            outcome = self._commit_programs(session._staged, tag)
            session.state = COMMITTED
            return outcome

    def _commit_programs(
        self, programs: Sequence[UpdateProgram], tag: str
    ) -> CommitOutcome:
        """Evaluate-all-then-commit-all (atomic batch); caller holds the
        writer queue.

        Evaluation errors commit nothing.  A journal *append* failure
        after an in-memory commit is unrecoverable divergence (the store
        is ahead of its durable log), so the service fail-stops: the
        error is raised and every further commit is refused until the
        process restarts and replays the journal — never a silently
        widening gap.
        """
        if self._journal_error is not None:
            raise SessionError(
                f"service is read-only after a journal failure "
                f"({self._journal_error}); restart to replay the journal"
            )
        if self.role != "primary":
            raise NotPrimaryError(
                f"this node is a read-only {self.role}; commit on the "
                f"primary, or promote this node first"
            )
        if self.store.epoch < self._fenced_epoch:
            raise StaleEpochError(
                f"this primary was fenced at epoch {self._fenced_epoch} "
                f"(it is still at epoch {self.store.epoch}); a newer "
                f"primary has been promoted — retry against it",
                current_epoch=self.store.epoch,
                required_epoch=self._fenced_epoch,
            )
        store = self.store
        engine = store.engine
        base = store.current
        commit_start = time.perf_counter()
        staged_bases: list[ObjectBase] = []
        for program in programs:
            result = engine.apply(program, base)
            base = result.new_base.freeze()
            staged_bases.append(base)
        _obs.observe(
            "commit_phase_seconds",
            time.perf_counter() - commit_start,
            phase="evaluate",
        )
        revisions: list[StoreRevision] = []
        for position, (program, new_base) in enumerate(zip(programs, staged_bases)):
            revision_tag = tag if len(programs) == 1 else (tag and f"{tag}.{position}")
            revision = store.commit_update(
                new_base, tag=revision_tag, program_name=program.name
            )
            if self.journal_dir is not None:
                append_start = time.perf_counter()
                try:
                    append_revision(
                        store, self.journal_dir, durability=self.durability
                    )
                except Exception as error:
                    self._journal_error = str(error)
                    raise SessionError(
                        f"revision {revision.index} [{revision.tag}] "
                        f"committed in memory but could not be journalled "
                        f"({error}); the service is now read-only — restart "
                        f"to recover at the last durable revision"
                    ) from error
                _obs.observe(
                    "commit_phase_seconds",
                    time.perf_counter() - append_start,
                    phase="append",
                )
                # Published strictly after the append: a follower only ever
                # streams lines that are durable here, keeping its journal a
                # prefix of this one even through a primary crash.
                for listener in tuple(self._repl_listeners):
                    listener(revision, store.has_snapshot(revision.index))
                    self._repl_streamed += 1
            revisions.append(revision)
        with self._state_lock:
            self._commits += len(revisions)
        total = time.perf_counter() - commit_start
        _obs.inc("server_commits", len(revisions))
        _slowlog.maybe_record(
            "commit",
            total,
            tag=tag,
            programs=len(programs),
            head=revisions[-1].index if revisions else None,
        )
        return CommitOutcome(revisions)

    # -- shared per-revision deltas ----------------------------------------
    def _revision_delta(self, revision: StoreRevision) -> Delta:
        """The trigger-indexed :class:`Delta` of a committed revision,
        built once and shared by every session validator and (via the
        subscription manager's ``delta_source``) every subscription check
        (revisions are immutable, so the cache never invalidates)."""
        delta = self._deltas.get(revision.index)
        if delta is None:
            delta = Delta()
            delta.record(revision.added, revision.removed)
            self._deltas[revision.index] = delta
            while len(self._deltas) > 1024:
                self._deltas.pop(next(iter(self._deltas)))
        return delta

    # -- accounting --------------------------------------------------------
    def stats(self) -> dict:
        """A point-in-time, JSON-ready report on the service.

        Every mutable sub-structure (subscription counters, prepared-query
        stats, the cache registry, replication info) is deep-snapshotted
        before the dict is returned: a concurrent commit can bump counters
        and grow cache dicts at any moment, and handing live dicts to
        ``json.dumps`` intermittently raised ``RuntimeError: dictionary
        changed size during iteration`` on a busy server.
        """
        self.record_gauges()
        return {
            "revisions": len(self.store),
            "head_tag": self.store.head.tag,
            "commits": self._commits,
            "conflicts": self._conflicts,
            "sessions_begun": self._session_counter,
            "journal": str(self.journal_dir) if self.journal_dir else None,
            "durability": (
                (self.durability or DurabilityOptions()).mode
                if self.journal_dir
                else None
            ),
            "write_timeout": self.write_timeout,
            "subscriptions": _deep_snapshot(self.subscriptions.stats()),
            "prepared": _deep_snapshot(self.store.prepared_stats()),
            # The process-wide cache registry (join-plan compilers, the
            # codegen backend counters, the OID intern table, ...) — what
            # ``repro client stats`` shows an operator.
            "caches": _deep_snapshot(cache_stats()),
            "replication": _deep_snapshot(self._replication_stats()),
            # The observability layer: the metrics-registry snapshot (empty
            # with REPRO_OBS unset) and the always-on slow-operation ring.
            "metrics": _obs.snapshot(),
            "slowlog": self.slowlog(),
            # Cluster identity (``repro cluster``); both None standalone.
            "shard": {"id": self.shard_id, "count": self.shard_count},
        }

    def slowlog(self) -> dict:
        """The slow-query/slow-commit ring (see :mod:`repro.obs.slowlog`)."""
        return _slowlog.slowlog().stats()

    def record_gauges(self) -> None:
        """Refresh point-in-time gauges (sessions, subscriptions,
        replication lag/epoch) in the metrics registry.  Called on every
        stats/metrics read so scrapes always see current values; a no-op
        when metrics are off."""
        if not _obs.metrics_enabled():
            return
        registry = _obs.registry()
        registry.set_gauge("server_sessions_begun", self._session_counter)
        registry.set_gauge(
            "server_subscriptions", len(self.subscriptions)
        )
        registry.set_gauge("store_revisions", len(self.store))
        replication = self._replication_stats()
        registry.set_gauge("repl_epoch", replication["epoch"])
        registry.set_gauge(
            "repl_followers", replication["followers"]
        )
        registry.set_gauge(
            "repl_streamed_lines", replication["streamed_lines"]
        )
        lag = replication.get("lag")
        if lag is not None:
            registry.set_gauge("repl_lag_revisions", lag)
        lag_seconds = replication.get("lag_seconds")
        if lag_seconds is not None:
            registry.set_gauge("repl_lag_seconds", lag_seconds)
        alive = replication.get("primary_alive")
        if alive is not None:
            registry.set_gauge("repl_primary_alive", 1.0 if alive else 0.0)

    def _replication_stats(self) -> dict:
        """The uniform ``stats()["replication"]`` section every backend
        carries: role, fencing epoch, and — on a follower, via the
        :attr:`replication_info` hook — stream lag and primary health."""
        info = {
            "role": self.role,
            "epoch": self.epoch,
            "fenced_epoch": self._fenced_epoch,
            "last_index": len(self.store) - 1,
            "followers": len(self._repl_listeners),
            "streamed_lines": self._repl_streamed,
            "primary": None,
            "lag": 0 if self.role == "primary" else None,
            "primary_alive": None,
        }
        extra = self.replication_info
        if extra is not None:
            info.update(extra())
        return info
