"""Concurrent serving subsystem: MVCC sessions, optimistic transactions,
and push-based live queries over a versioned store.

The paper's update programs assume a single mutator.  This subpackage is
the concurrency seam on the road to "heavy traffic from millions of
users": it mediates many readers and writers over one
:class:`~repro.storage.history.VersionedStore` and turns the prepared-query
memoization of the serving layer into *push* delivery.

* :mod:`~repro.server.service` — :class:`StoreService` and
  :class:`Session`: snapshot reads pinned to a revision (free via
  structural sharing), optimistic commits validated by intersecting the
  session's read/write footprint (query and program
  :class:`~repro.core.plans.QuerySignature` triggers) against the deltas
  committed since the pin, a strict FIFO writer queue, and journal-backed
  durability (commits append; restart replays).
* :mod:`~repro.server.subscriptions` — live queries: on each commit the
  exact delta is folded through each subscription's signature; only
  *answer diffs* travel, and provably unaffected queries cost nothing.
* :mod:`~repro.server.protocol` / :mod:`~repro.server.server` /
  :mod:`~repro.server.client` — the JSON-lines wire protocol, its asyncio
  transport (``repro serve``), and the clients (:class:`AsyncClient` plus
  the in-process :func:`connect_local` for tests and embedding).

This is the architectural seam later scaling PRs (sharding, replication,
multi-backend) plug into: everything above the :class:`StoreService` talks
revisions, deltas and signatures — never raw bases.
"""

from repro.server.client import AsyncClient, LocalClient, connect_local
from repro.server.errors import (
    ConflictError,
    ConnectionClosed,
    ServerBusyError,
    ServerError,
    SessionError,
)
from repro.server.server import ReproServer, ServerLimits
from repro.server.service import CommitOutcome, Session, StoreService
from repro.server.subscriptions import Subscription, SubscriptionManager

__all__ = [
    "StoreService",
    "Session",
    "CommitOutcome",
    "SubscriptionManager",
    "Subscription",
    "ReproServer",
    "ServerLimits",
    "AsyncClient",
    "LocalClient",
    "connect_local",
    "ConflictError",
    "ServerError",
    "SessionError",
    "ConnectionClosed",
    "ServerBusyError",
]
