"""Errors of the concurrent serving subsystem.

Everything derives from :class:`~repro.core.errors.ReproError`, so embedders
that already catch the library family keep working; the serving layer adds
the distinctions a concurrent client actually branches on:

* :class:`ConflictError` — an optimistic commit lost its validation race and
  is **retryable**: begin a fresh session, restage, commit again (or use
  :meth:`repro.server.service.StoreService.run_transaction`, which does the
  loop).
* :class:`SessionError` — a protocol misuse that retrying cannot fix: an
  unknown or already-finished session, or a commit with nothing staged.
"""

from __future__ import annotations

from repro.core.errors import ReproError

__all__ = ["ServerError", "ConflictError", "SessionError"]


class ServerError(ReproError):
    """Base class for every serving-subsystem error."""


class ConflictError(ServerError):
    """An optimistic transaction failed validation and must be retried.

    Attributes
    ----------
    pinned:
        The revision index the losing session had pinned.
    conflicting_index / conflicting_tag:
        The first interim revision whose delta intersected the session's
        read/write footprint.
    """

    #: Clients may transparently begin a fresh session and retry.
    retryable = True

    def __init__(
        self, message: str, *, pinned: int, conflicting_index: int,
        conflicting_tag: str,
    ) -> None:
        super().__init__(message)
        self.pinned = pinned
        self.conflicting_index = conflicting_index
        self.conflicting_tag = conflicting_tag


class SessionError(ServerError):
    """A session was used outside its lifecycle (unknown id, already
    committed/aborted, or committed with nothing staged)."""

    retryable = False
