"""Errors of the concurrent serving subsystem.

Everything derives from :class:`~repro.core.errors.ReproError`, so embedders
that already catch the library family keep working; the serving layer adds
the distinctions a concurrent client actually branches on:

* :class:`ConflictError` — an optimistic commit lost its validation race and
  is **retryable**: begin a fresh session, restage, commit again (or use
  :meth:`repro.server.service.StoreService.run_transaction`, which does the
  loop).
* :class:`SessionError` — a protocol misuse that retrying cannot fix: an
  unknown or already-finished session, or a commit with nothing staged.
* :class:`ConnectionClosed` — the transport died (server restart, dropped
  socket, shutdown); **retryable** through a reconnecting client.
* :class:`ServerBusyError` — the server shed load (writer-queue timeout,
  outbox overflow); **retryable** after a backoff.
* :class:`StaleEpochError` — a write carried (or arrived at a node holding)
  a fencing epoch older than the replica set's current one: the zombie
  primary's write is rejected; **retryable** against the new primary.
* :class:`NotPrimaryError` — a mutation reached a read-only follower;
  **retryable** after rediscovering the primary.

Every error exposes a boolean ``retryable`` class attribute, which also
travels on the wire so remote clients can branch without string matching.
"""

from __future__ import annotations

from repro.core.errors import ReproError

__all__ = [
    "ServerError",
    "ConflictError",
    "SessionError",
    "ConnectionClosed",
    "ServerBusyError",
    "StaleEpochError",
    "NotPrimaryError",
]


class ServerError(ReproError):
    """Base class for every serving-subsystem error."""

    #: May a client transparently retry the failed operation?
    retryable = False


class ConflictError(ServerError):
    """An optimistic transaction failed validation and must be retried.

    Attributes
    ----------
    pinned:
        The revision index the losing session had pinned.
    conflicting_index / conflicting_tag:
        The first interim revision whose delta intersected the session's
        read/write footprint.
    """

    #: Clients may transparently begin a fresh session and retry.
    retryable = True

    def __init__(
        self, message: str, *, pinned: int, conflicting_index: int,
        conflicting_tag: str,
    ) -> None:
        super().__init__(message)
        self.pinned = pinned
        self.conflicting_index = conflicting_index
        self.conflicting_tag = conflicting_tag


class SessionError(ServerError):
    """A session was used outside its lifecycle (unknown id, already
    committed/aborted, or committed with nothing staged)."""

    retryable = False


class ConnectionClosed(ServerError):
    """The wire link died: server restart, dropped socket, or a local
    ``close()`` while requests or push waiters were outstanding.

    Retryable by definition — the request may or may not have reached the
    server, so clients re-issue only *safe* (read-only or idempotent)
    commands; a reconnecting :class:`~repro.api.wire.WireConnection` does
    exactly that under its :class:`~repro.api.model.RetryPolicy`.
    """

    retryable = True


class ServerBusyError(ServerError):
    """The server shed load instead of queueing without bound: the FIFO
    writer queue did not free up within the configured timeout, or a
    connection's outbox overflowed its hard cap.  Back off and retry."""

    retryable = True


class StaleEpochError(ServerError):
    """A write was fenced off by the replication epoch.

    Raised when a commit carries a ``min_epoch`` newer than the node's own
    (the client has already seen a promotion this node missed), or when the
    node itself has been fenced by a promotion (``repl-fence``) and keeps
    receiving writes as a zombie primary.  Retryable by definition: the
    write belongs on the new primary, and a replica-set client re-routes it
    there under its :class:`~repro.api.model.RetryPolicy`.

    Attributes
    ----------
    current_epoch:
        The fencing epoch this node is at.
    required_epoch:
        The epoch the write (or the fence) demanded.
    """

    retryable = True

    def __init__(
        self, message: str, *, current_epoch: int = 0, required_epoch: int = 0
    ) -> None:
        super().__init__(message)
        self.current_epoch = current_epoch
        self.required_epoch = required_epoch


class NotPrimaryError(ServerError):
    """A mutation reached a node serving as a read-only follower.

    Followers serve pinned reads, prepared queries and subscriptions
    locally but never originate commits — those belong on the primary (or
    on this node *after* ``repro replica promote``).  Retryable: clients
    rediscover the primary and re-route."""

    retryable = True
