"""Clients for the serving subsystem: in-process and over the wire.

:func:`connect_local` returns a :class:`LocalClient` bound directly to a
:class:`~repro.server.service.StoreService` through the *same*
:class:`~repro.server.protocol.Dispatcher` the asyncio server uses — the
full protocol without sockets, for tests, benchmarks and embedding.  Push
messages accumulate in-process and are drained with :meth:`LocalClient.pushes`.

:class:`AsyncClient` speaks the JSON-lines protocol over a unix socket or
TCP: one background reader task routes responses to their awaiting callers
by ``id`` and queues pushes for :meth:`AsyncClient.next_push`.

.. deprecated::
    For application code, prefer the unified connection facade —
    ``repro.connect("serve:/path/to.sock")`` (or an in-process
    ``repro.connect("memory:")`` / journal-directory target) yields the same
    typed surface over every backend.  These clients remain the wire
    building blocks the facade is built on and stay supported for raw
    protocol work (scripting, new transports).
"""

from __future__ import annotations

import asyncio
import itertools

from repro.core.query import decode_answers
from repro.server.errors import (
    ConflictError,
    ConnectionClosed,
    NotPrimaryError,
    ServerBusyError,
    ServerError,
    StaleEpochError,
)
from repro.server.protocol import LINE_LIMIT, ClientState, Dispatcher, decode, encode
from repro.server.service import StoreService

__all__ = ["LocalClient", "AsyncClient", "connect_local"]


def _raise_for(response: dict) -> dict:
    """Turn an ``ok: false`` response back into the typed exception."""
    if response.get("ok"):
        return response
    message = response.get("error", "server error")
    if response.get("conflict"):
        raise ConflictError(
            message,
            pinned=response.get("pinned", -1),
            conflicting_index=response.get("conflicting_index", -1),
            conflicting_tag=response.get("conflicting_tag", ""),
        )
    if response.get("stale_epoch"):
        raise StaleEpochError(
            message,
            current_epoch=response.get("current_epoch", 0),
            required_epoch=response.get("required_epoch", 0),
        )
    if response.get("not_primary"):
        raise NotPrimaryError(message)
    if response.get("retryable"):
        # non-conflict but typed-retryable: the server shed load
        raise ServerBusyError(message)
    raise ServerError(message)


class _ClientConveniences:
    """Command sugar shared by both clients; subclasses provide ``call``
    (sync for :class:`LocalClient`; :class:`AsyncClient` wraps the async
    ``call`` itself and reuses nothing here but the naming contract)."""

    def call(self, cmd: str, **payload) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError

    def ping(self) -> dict:
        return self.call("ping")

    def apply(self, program: str, *, tag: str = "") -> dict:
        return self.call("apply", program=program, tag=tag)

    def query(self, body: str) -> list:
        """Answers at the head, decoded on receipt: canonical fresh rows,
        value-equal to ``repro.query`` on the same base — never the
        dispatcher's live memo lists."""
        return decode_answers(self.call("query", body=body)["answers"])

    def prepare(self, body: str, *, name: str | None = None) -> dict:
        return self.call("prepare", body=body, name=name)

    def subscribe(self, body: str, *, name: str | None = None) -> dict:
        return self.call("subscribe", body=body, name=name)

    def unsubscribe(self, sid: str) -> dict:
        return self.call("unsubscribe", sid=sid)

    def begin(self) -> str:
        return self.call("tx-begin")["session"]

    def tx_query(self, session: str, body: str) -> list:
        """Answers at the session's pinned revision, decoded on receipt
        (same contract as :meth:`query`)."""
        return decode_answers(
            self.call("tx-query", session=session, body=body)["answers"]
        )

    def stage(self, session: str, program: str) -> dict:
        return self.call("tx-stage", session=session, program=program)

    def commit(self, session: str, *, tag: str = "") -> dict:
        return self.call("tx-commit", session=session, tag=tag)

    def abort(self, session: str) -> dict:
        return self.call("tx-abort", session=session)

    def log(self) -> list:
        return self.call("log")["revisions"]

    def as_of(self, revision) -> str:
        return self.call("as-of", revision=revision)["facts"]

    def stats(self) -> dict:
        return self.call("stats")["stats"]


class LocalClient(_ClientConveniences):
    """An in-process protocol client over a service (no event loop).

    Mirrors a wire connection: it owns per-connection sessions and
    subscriptions, and collects push messages synchronously as commits
    (its own or other clients') touch its subscriptions.
    """

    def __init__(self, service: StoreService) -> None:
        self.service = service
        self._dispatcher = Dispatcher(service)
        self._pending_pushes: list[dict] = []
        self._state = ClientState(self._pending_pushes.append)
        self._ids = itertools.count(1)
        self._closed = False

    def request(self, cmd: str, **payload) -> dict:
        """Send one command, return the raw response dict (never raises
        for server-side errors — inspect ``ok``)."""
        if self._closed:
            raise ServerError("client is closed")
        message = {"id": next(self._ids), "cmd": cmd}
        message.update(
            {key: value for key, value in payload.items() if value is not None}
        )
        return self._dispatcher.handle(message, self._state)

    def call(self, cmd: str, **payload) -> dict:
        """Like :meth:`request` but raising the typed error on failure."""
        return _raise_for(self.request(cmd, **payload))

    def pushes(self) -> list[dict]:
        """Drain and return the pushes delivered since the last drain."""
        drained, self._pending_pushes[:] = list(self._pending_pushes), []
        return drained

    def close(self) -> None:
        if not self._closed:
            self._dispatcher.close(self._state)
            self._closed = True

    def __enter__(self) -> "LocalClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect_local(target) -> LocalClient:
    """Connect in-process: ``target`` is a :class:`StoreService`, a
    :class:`~repro.storage.history.VersionedStore` (wrapped in a fresh
    service), or a journal directory path (opened with durability).

    .. deprecated::
        Prefer ``repro.connect(target)`` — the unified facade accepts the
        same targets and returns the typed :class:`~repro.api.Connection`
        surface instead of raw protocol dicts.  Kept as the thin shim for
        code that wants the dict-protocol dispatcher directly.
    """
    from pathlib import Path

    from repro.storage.history import VersionedStore

    if isinstance(target, StoreService):
        return LocalClient(target)
    if isinstance(target, VersionedStore):
        return LocalClient(StoreService(target))
    if isinstance(target, (str, Path)):
        return LocalClient(StoreService.open(target))
    raise TypeError(
        f"connect_local needs a StoreService, VersionedStore or journal "
        f"directory, not {type(target).__name__}"
    )


#: Push-queue sentinel: the connection died; every ``next_push`` waiter
#: (present and future) gets a :class:`ConnectionClosed` instead of hanging.
_PUSHES_CLOSED = object()


class AsyncClient:
    """The asyncio wire client (see the module doc).

    >>> client = await AsyncClient.connect(path=socket_path)   # doctest: +SKIP
    >>> await client.call("query", body="E.sal -> S")          # doctest: +SKIP
    >>> push = await client.next_push(timeout=1.0)             # doctest: +SKIP
    """

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._waiting: dict[int, asyncio.Future] = {}
        self._pushes: asyncio.Queue = asyncio.Queue()
        self._dead: str | None = None
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @property
    def alive(self) -> bool:
        """Whether the connection can still carry requests."""
        return self._dead is None and not self._closed

    @classmethod
    async def connect(
        cls,
        *,
        path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
    ) -> "AsyncClient":
        if path is not None:
            reader, writer = await asyncio.open_unix_connection(
                path, limit=LINE_LIMIT
            )
        elif port is not None:
            reader, writer = await asyncio.open_connection(
                host, port, limit=LINE_LIMIT
            )
        else:
            raise ValueError("need a unix socket path or a TCP port")
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    self._dead = "connection closed by the server"
                    break
                if not line.strip():
                    continue
                message = decode(line)
                if "push" in message:
                    self._pushes.put_nowait(message)
                    continue
                future = self._waiting.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except asyncio.CancelledError:
            self._dead = "client closed"
        except Exception as error:
            # Any reader failure (reset peer, malformed frame, overlong
            # line) is terminal for the connection: record why, so later
            # request() calls fail fast instead of awaiting forever.
            self._dead = f"connection failed: {error}"
        finally:
            if self._dead is None:
                self._dead = "connection closed"
            for future in self._waiting.values():
                if not future.done():
                    future.set_exception(ConnectionClosed(self._dead))
            self._waiting.clear()
            # wake every pending (and future) next_push waiter: a stream
            # that will never produce again must say so, not hang
            self._pushes.put_nowait(_PUSHES_CLOSED)

    async def request(self, cmd: str, **payload) -> dict:
        """Send one command and await its raw response dict."""
        if self._dead is not None:
            raise ConnectionClosed(self._dead)
        request_id = next(self._ids)
        message = {"id": request_id, "cmd": cmd}
        message.update(
            {key: value for key, value in payload.items() if value is not None}
        )
        future = asyncio.get_event_loop().create_future()
        self._waiting[request_id] = future
        try:
            self._writer.write(encode(message))
            await self._writer.drain()
        except (ConnectionError, OSError) as error:
            stale = self._waiting.pop(request_id, None)
            if stale is not None and stale.done() and not stale.cancelled():
                stale.exception()  # read loop failed it first: observe it
            raise ConnectionClosed(f"connection failed: {error}") from None
        return await future

    async def call(self, cmd: str, **payload) -> dict:
        """Like :meth:`request` but raising the typed error on failure."""
        return _raise_for(await self.request(cmd, **payload))

    async def next_push(self, *, timeout: float | None = None) -> dict:
        """Await the next push message (subscription answer diff).

        Raises :class:`ConnectionClosed` — instead of waiting forever —
        once the connection has died or :meth:`close` was called.
        """
        if timeout is None:
            message = await self._pushes.get()
        else:
            message = await asyncio.wait_for(self._pushes.get(), timeout)
        if message is _PUSHES_CLOSED:
            # leave the sentinel in place so every other waiter wakes too
            self._pushes.put_nowait(_PUSHES_CLOSED)
            raise ConnectionClosed(self._dead or "client closed")
        return message

    def drain_pushes(self) -> list[dict]:
        """Already-received pushes, without waiting."""
        drained = []
        while not self._pushes.empty():
            message = self._pushes.get_nowait()
            if message is _PUSHES_CLOSED:
                self._pushes.put_nowait(_PUSHES_CLOSED)
                break
            drained.append(message)
        return drained

    async def close(self) -> None:
        """Tear down the connection: cancel *and await* the reader task,
        resolve pending ``next_push``/``request`` waiters with
        :class:`ConnectionClosed`, close the socket.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
