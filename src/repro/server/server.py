"""The asyncio transport: JSON-lines over a unix socket or TCP.

``ReproServer`` accepts connections, runs each through the shared
:class:`~repro.server.protocol.Dispatcher`, and pushes subscription answer
diffs as they happen.  Each connection gets one outbox drained by a
dedicated writer task, so responses and pushes — which can be produced from
*another* connection's commit — interleave without two writers racing on
one stream.

The event loop is single-threaded, so command handling (including engine
evaluation inside a commit) runs to completion between awaits: the service
sees the same serialized access the FIFO writer queue enforces for
threaded embedders.  A commit therefore briefly blocks other connections —
the right trade at this scale, and the seam a later PR can move to a
worker pool.

**Load shedding.**  Outboxes are bounded (:class:`ServerLimits`).  When a
subscriber reads slower than the store commits and its queue crosses the
soft limit, the queued answer diffs for that subscription are *shed* and
replaced by one ``lagged`` marker; at delivery time the marker
materializes into a single coalesced push carrying the missed-revision
range and the subscription's full current answer set — bounded memory per
connection no matter how far behind the reader falls.  A connection that
overruns the hard cap anyway (a reader that stopped draining entirely) is
told why (``{"push": "closed", "retryable": true}``) and disconnected.

**Graceful shutdown.**  :meth:`ReproServer.shutdown` stops accepting,
lets in-flight commands finish (single-threaded loop: they already have),
sends every connection a ``shutdown`` push, flushes outboxes within a
deadline, then closes the sockets.  The journal needs no special
treatment — every acknowledged commit was appended synchronously inside
its writer-queue critical section.

Usage::

    service = StoreService.open("journal-dir")
    server = await ReproServer(service, path="/tmp/repro.sock").start()
    await server.serve_forever()

or, from the CLI, ``repro serve --dir journal-dir --socket /tmp/repro.sock``.
"""

from __future__ import annotations

import asyncio
import os
import stat as stat_module
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.obs import metrics as _obs
from repro.obs import slowlog as _slowlog
from repro.server.protocol import LINE_LIMIT, ClientState, Dispatcher, decode, encode
from repro.server.service import StoreService

__all__ = ["ReproServer", "ServerLimits"]


@dataclass(frozen=True)
class ServerLimits:
    """Backpressure knobs for one :class:`ReproServer`.

    ``outbox_soft`` — queued messages per connection above which
    subscription diffs are shed into a coalesced ``lagged`` resync;
    ``outbox_hard`` — absolute per-connection queue cap: crossing it
    disconnects the client with a typed, retryable error;
    ``shutdown_deadline`` — seconds :meth:`ReproServer.shutdown` waits for
    outboxes to flush before cutting the remaining connections.
    """

    outbox_soft: int = 64
    outbox_hard: int = 1024
    shutdown_deadline: float = 5.0


class _Lagged:
    """Outbox marker: subscription ``sid`` fell behind; materialize a
    coalesced resync at delivery time."""

    __slots__ = ("sid", "from_revision")

    def __init__(self, sid: str, from_revision: int) -> None:
        self.sid = sid
        self.from_revision = from_revision


class _Kill:
    """Outbox marker: deliver one final typed error, then disconnect."""

    __slots__ = ("frame",)

    def __init__(self, reason: str) -> None:
        self.frame = {"push": "closed", "error": reason, "retryable": True}


#: Outbox sentinel: the connection is closing; drain returns after seeing it.
_CLOSE = object()


class Outbox:
    """One connection's bounded, thread-safe outgoing queue.

    Producers are the dispatcher (responses, on the loop) and the
    subscription manager (pushes — possibly from a foreign thread when the
    service is shared with in-process writers), so puts take a real lock
    and wake the drain task via ``call_soon_threadsafe``.  Shedding policy
    lives here (see the module doc); delivery order is preserved for
    everything that is not shed.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, limits: ServerLimits):
        self._loop = loop
        self._limits = limits
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._event = asyncio.Event()
        self._lagging: dict[str, int] = {}  # sid -> first shed revision
        self.closing = False
        self.kill_reason: str | None = None
        self.shed = 0  # diffs dropped in favour of a coalesced resync

    def put(self, message) -> None:
        with self._lock:
            if self.closing or self.kill_reason is not None:
                return
            if isinstance(message, dict) and message.get("push") == "diff":
                sid = message.get("sid")
                if sid in self._lagging:
                    # already lagging: the pending resync covers this diff
                    self.shed += 1
                    return
                if len(self._items) >= self._limits.outbox_soft:
                    self._shed_sid(sid, message)
                    self._wake()
                    return
            self._items.append(message)
            if len(self._items) > self._limits.outbox_hard:
                self.kill_reason = (
                    f"connection outbox overflowed the hard cap "
                    f"({self._limits.outbox_hard} messages queued and the "
                    f"peer is not reading); disconnecting"
                )
                self._items.append(_Kill(self.kill_reason))
            self._wake()

    def _shed_sid(self, sid: str, message: dict) -> None:
        """Replace every queued diff for ``sid`` (plus this one) with one
        lagged marker remembering the earliest shed revision."""
        first = message.get("revision")
        kept: deque = deque()
        for item in self._items:
            if (
                isinstance(item, dict)
                and item.get("push") == "diff"
                and item.get("sid") == sid
            ):
                first = min(first, item.get("revision", first))
                self.shed += 1
            else:
                kept.append(item)
        self.shed += 1  # the diff that tripped the limit is shed too
        self._items = kept
        self._lagging[sid] = first
        self._items.append(_Lagged(sid, first))

    def clear_lag(self, sid: str) -> int | None:
        """Forget the lag flag for ``sid`` (called under the subscription
        manager's lock while its resync snapshot is taken)."""
        with self._lock:
            return self._lagging.pop(sid, None)

    def close(self) -> None:
        """Stop accepting messages; the drain task finishes the backlog
        and returns.  Idempotent."""
        with self._lock:
            if self.closing:
                return
            self.closing = True
            self._items.append(_CLOSE)
            self._wake()

    def _wake(self) -> None:
        self._loop.call_soon_threadsafe(self._event.set)

    async def get(self):
        while True:
            with self._lock:
                if self._items:
                    return self._items.popleft()
                self._event.clear()
            await self._event.wait()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class _Connection:
    """Bookkeeping for one live connection (registry entry)."""

    __slots__ = ("outbox", "writer", "drain_task")

    def __init__(self, outbox: Outbox, writer, drain_task) -> None:
        self.outbox = outbox
        self.writer = writer
        self.drain_task = drain_task


class ReproServer:
    """One listening endpoint over one :class:`StoreService`."""

    def __init__(
        self,
        service: StoreService,
        *,
        path: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        limits: ServerLimits | None = None,
    ) -> None:
        if path is None and port is None:
            raise ValueError("need a unix socket path or a TCP port")
        self.service = service
        self.dispatcher = Dispatcher(service)
        self.path = path
        self.host = host
        self.port = port
        self.limits = limits or ServerLimits()
        self.connections = 0
        self.lagged_resyncs = 0
        self.overload_disconnects = 0
        self._server: asyncio.AbstractServer | None = None
        self._live: set[_Connection] = set()
        self._handler_tasks: set[asyncio.Task] = set()
        self._draining = False

    async def start(self) -> "ReproServer":
        if self.path is not None:
            _remove_stale_socket(self.path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.path, limit=LINE_LIMIT
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self.port,
                limit=LINE_LIMIT,
            )
            self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> str:
        """Printable endpoint (the CLI banner)."""
        if self.path is not None:
            return f"unix:{self.path}"
        return f"tcp:{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, *, deadline: float | None = None) -> None:
        """Graceful stop: no new connections, in-flight commands finish,
        outboxes flush within ``deadline``, sockets close, journal clean.

        Safe to call more than once; ``close()`` afterwards is a no-op.
        """
        if deadline is None:
            deadline = self.limits.shutdown_deadline
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._adopt_stragglers()
        # In-flight commits: the loop is single-threaded, so every handler
        # that had started has already produced its response into an
        # outbox; threaded embedders serialize on the service's FIFO
        # writer queue, which each commit exits with the journal appended.
        live = list(self._live)
        for connection in live:
            connection.outbox.put(
                {"push": "shutdown", "reason": "server shutting down"}
            )
            connection.outbox.close()
        if live:
            _done, pending = await asyncio.wait(
                [connection.drain_task for connection in live],
                timeout=deadline,
            )
            for task in pending:  # flush deadline blown: cut them off
                task.cancel()
        for connection in live:
            _close_writer(connection.writer)
        await self._reap_handlers()

    async def close(self) -> None:
        """Abrupt stop (tests, embedders): closes the listener and cuts
        every live connection without the shutdown pleasantries."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._adopt_stragglers()
        for connection in list(self._live):
            connection.outbox.close()
            _close_writer(connection.writer)
        await self._reap_handlers()

    async def _adopt_stragglers(self) -> None:
        """Yield a few loop iterations so connections that were accepted
        but whose handler task has not run yet get to register themselves.
        Without this, a connection racing the stop would keep its socket
        open past ``close()`` — and its client would never see EOF."""
        for _ in range(3):
            await asyncio.sleep(0)

    async def _reap_handlers(self) -> None:
        """Wait for every handler to finish its teardown (which closes the
        socket), so by the time a stop returns no client is left attached
        to a dead server.  Stragglers past the grace period are cancelled."""
        if not self._handler_tasks:
            return
        _done, pending = await asyncio.wait(
            list(self._handler_tasks), timeout=2.0
        )
        for task in pending:
            task.cancel()

    async def _handle_connection(self, reader, writer) -> None:
        self.connections += 1
        loop = asyncio.get_running_loop()
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        outbox = Outbox(loop, self.limits)
        state = ClientState(outbox.put)
        drain_task = asyncio.ensure_future(self._drain(outbox, writer))
        connection = _Connection(outbox, writer, drain_task)
        self._live.add(connection)
        try:
            while not self._draining:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode(line)
                except Exception as error:  # malformed frame: answer, keep going
                    outbox.put({"id": None, "ok": False, "error": str(error)})
                    continue
                start = time.perf_counter()
                response = self.dispatcher.handle(request, state)
                elapsed = time.perf_counter() - start
                cmd = str(request.get("cmd", "?"))
                _obs.observe("server_command_seconds", elapsed, cmd=cmd)
                if cmd not in ("apply", "tx", "commit"):
                    # Commit-bearing commands land in the slowlog from the
                    # service's own commit timer with richer detail.
                    _slowlog.maybe_record("command", elapsed, detail=cmd)
                if _obs.metrics_enabled():
                    registry = _obs.registry()
                    registry.set_gauge("server_outbox_depth", len(outbox))
                    registry.set_gauge("server_connections", len(self._live))
                    registry.set_gauge(
                        "server_outbox_shed",
                        sum(c.outbox.shed for c in self._live),
                    )
                    registry.set_gauge(
                        "server_lagged_resyncs", self.lagged_resyncs
                    )
                    registry.set_gauge(
                        "server_overload_disconnects",
                        self.overload_disconnects,
                    )
                outbox.put(response)
                if outbox.kill_reason is not None:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            self._live.discard(connection)
            self.dispatcher.close(state)
            outbox.close()  # flush everything queued, then stop
            try:
                await drain_task
            except asyncio.CancelledError:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            except asyncio.CancelledError:
                # The loop is shutting down mid-teardown (server.close or
                # asyncio.run finalization); the transport is closed.
                pass

    def _materialize_lagged(self, marker: _Lagged, outbox: Outbox) -> dict | None:
        """Build the coalesced resync push for a shed subscription.

        Runs at delivery time, so the push carries the subscription's
        *current* answers — everything the shed diffs would have built up
        to.  The outbox lag flag is cleared inside the manager lock (see
        :meth:`SubscriptionManager.resync`), so diffs enqueued after this
        snapshot compose cleanly on top of it.
        """
        snapshot = self.service.subscriptions.resync(
            marker.sid, acknowledge=outbox.clear_lag
        )
        if snapshot is None:  # unsubscribed while lagging: nothing to say
            return None
        self.lagged_resyncs += 1
        return {
            "push": "lagged",
            "sid": snapshot["sid"],
            "query": snapshot["query"],
            "from_revision": marker.from_revision,
            "to_revision": snapshot["revision"],
            "revision": snapshot["revision"],
            "answers": snapshot["answers"],
        }

    async def _drain(self, outbox: Outbox, writer) -> None:
        """The connection's single writer: frames every queued message in
        order, returns on the close sentinel or a dead peer."""
        while True:
            message = await outbox.get()
            if message is _CLOSE:
                return
            if isinstance(message, _Lagged):
                message = self._materialize_lagged(message, outbox)
                if message is None:
                    continue
            kill = isinstance(message, _Kill)
            frame = message.frame if kill else message
            try:
                writer.write(encode(frame))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                return
            if kill:
                self.overload_disconnects += 1
                _close_writer(writer)
                return


def _close_writer(writer) -> None:
    if not writer.is_closing():
        writer.close()


def _remove_stale_socket(path: str) -> None:
    """Unlink a leftover unix socket so a restarted server can rebind.

    A killed process leaves its socket file behind and the next bind fails
    with ``EADDRINUSE`` — exactly the crash-restart path the reconnecting
    clients depend on.  Only socket files are removed; a regular file at
    the path is someone else's and keeps its bind error.
    """
    try:
        if stat_module.S_ISSOCK(os.stat(path).st_mode):
            os.unlink(path)
    except OSError:
        pass
