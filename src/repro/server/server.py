"""The asyncio transport: JSON-lines over a unix socket or TCP.

``ReproServer`` accepts connections, runs each through the shared
:class:`~repro.server.protocol.Dispatcher`, and pushes subscription answer
diffs as they happen.  Each connection gets one outbox queue drained by a
dedicated writer task, so responses and pushes — which can be produced from
*another* connection's commit — interleave without two writers racing on
one stream.

The event loop is single-threaded, so command handling (including engine
evaluation inside a commit) runs to completion between awaits: the service
sees the same serialized access the FIFO writer queue enforces for
threaded embedders.  A commit therefore briefly blocks other connections —
the right trade at this scale, and the seam a later PR can move to a
worker pool.

Usage::

    service = StoreService.open("journal-dir")
    server = await ReproServer(service, path="/tmp/repro.sock").start()
    await server.serve_forever()

or, from the CLI, ``repro serve --dir journal-dir --socket /tmp/repro.sock``.
"""

from __future__ import annotations

import asyncio

from repro.server.protocol import LINE_LIMIT, ClientState, Dispatcher, decode, encode
from repro.server.service import StoreService

__all__ = ["ReproServer"]


class ReproServer:
    """One listening endpoint over one :class:`StoreService`."""

    def __init__(
        self,
        service: StoreService,
        *,
        path: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if path is None and port is None:
            raise ValueError("need a unix socket path or a TCP port")
        self.service = service
        self.dispatcher = Dispatcher(service)
        self.path = path
        self.host = host
        self.port = port
        self.connections = 0
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> "ReproServer":
        if self.path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.path, limit=LINE_LIMIT
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self.port,
                limit=LINE_LIMIT,
            )
            self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> str:
        """Printable endpoint (the CLI banner)."""
        if self.path is not None:
            return f"unix:{self.path}"
        return f"tcp:{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(self, reader, writer) -> None:
        self.connections += 1
        outbox: asyncio.Queue = asyncio.Queue()
        state = ClientState(outbox.put_nowait)
        drain_task = asyncio.ensure_future(_drain(outbox, writer))
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode(line)
                except Exception as error:  # malformed frame: answer, keep going
                    outbox.put_nowait({"id": None, "ok": False, "error": str(error)})
                    continue
                outbox.put_nowait(self.dispatcher.handle(request, state))
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            self.dispatcher.close(state)
            outbox.put_nowait(_CLOSE)  # flush everything queued, then stop
            try:
                await drain_task
            except asyncio.CancelledError:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            except asyncio.CancelledError:
                # The loop is shutting down mid-teardown (server.close or
                # asyncio.run finalization); the transport is closed.
                pass


#: Outbox sentinel: the connection is closing; drain returns after seeing it.
_CLOSE = object()


async def _drain(outbox: asyncio.Queue, writer) -> None:
    """The connection's single writer: frames every queued message in
    order, returns on the close sentinel or a dead peer."""
    while True:
        message = await outbox.get()
        if message is _CLOSE:
            return
        try:
            writer.write(encode(message))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            return
