"""Push-based live queries: subscriptions that receive *answer diffs*.

PR 3's prepared-query layer made repeated reads cheap but still *pull*: a
client has to re-ask to learn that nothing changed.  This module turns the
same machinery into push delivery.  A subscription registers a prepared
conjunctive body; on every store commit the manager folds the commit's
exact ``(added, removed)`` fact delta through the query's
:class:`~repro.core.plans.QuerySignature`:

* **no trigger fires** — the delta provably cannot change the answers; the
  subscription advances its revision silently, with no evaluation and no
  message (the push analogue of PR 3's memo *carry*);
* **a trigger fires** — the answers are refreshed through
  :meth:`VersionedStore.query` (so N subscriptions sharing a body share one
  evaluation via the store's per-revision memo) and only the **answer
  diff** (:func:`~repro.core.query.diff_answers`) travels to the client —
  an empty diff (the delta touched the query's keys but not its answers)
  sends nothing.

Folding a subscription's diff stream over its initial answer set
reproduces the full answer set at every revision — the differential
guarantee the server test suite checks against fresh store queries.

The manager hooks :meth:`VersionedStore.add_commit_listener`, so *any*
commit path — service transactions, direct ``store.apply`` in an embedding
process — feeds subscriptions.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.core.objectbase import Delta
from repro.core.query import Answer, diff_answers
from repro.storage.history import StoreRevision, VersionedStore

__all__ = ["Subscription", "SubscriptionManager"]

#: A delivery sink: called with one JSON-ready push message per answer diff.
Deliver = Callable[[dict], None]

#: A per-revision Delta provider (the service shares its cached one).
DeltaSource = Callable[[StoreRevision], Delta]


class Subscription:
    """One registered live query and its client-visible answer state.

    ``answers``/``revision`` always describe the last state the client was
    brought to (initial set plus every delivered diff); ``skipped`` counts
    commits proven irrelevant by the signature, ``refreshed`` the commits
    that forced a re-evaluation, and ``pushed`` the non-empty diffs
    actually delivered.
    """

    __slots__ = (
        "id", "query", "deliver", "answers", "revision",
        "skipped", "refreshed", "pushed",
    )

    def __init__(self, sid, query, deliver, answers, revision):
        self.id = sid
        self.query = query
        self.deliver = deliver
        self.answers: list[Answer] = answers
        self.revision: int = revision
        self.skipped = 0
        self.refreshed = 0
        self.pushed = 0

    def stats(self) -> dict:
        return {
            "query": self.query.name,
            "revision": self.revision,
            "answers": len(self.answers),
            "skipped": self.skipped,
            "refreshed": self.refreshed,
            "pushed": self.pushed,
        }


class SubscriptionManager:
    """Registry of live queries over one store (see the module doc).

    Registration and commit processing serialize on one lock: a
    subscription's ``(answers, revision)`` seed is captured atomically
    with respect to `_on_commit`, so a commit landing concurrently from
    another thread can never leave a subscriber one revision stale with
    its first diff silently dropped.
    """

    def __init__(
        self,
        store: VersionedStore,
        *,
        delta_source: DeltaSource | None = None,
    ) -> None:
        self._store = store
        self._subscriptions: dict[str, Subscription] = {}
        self._counter = 0
        self._lock = threading.RLock()
        self._delta_source = delta_source or _build_delta
        store.add_commit_listener(self._on_commit)

    def __len__(self) -> int:
        return len(self._subscriptions)

    def subscribe(
        self, query, deliver: Deliver, *, name: str | None = None
    ) -> Subscription:
        """Register a live query; the returned subscription carries the
        initial answer set at the current head (the client's fold seed).
        No push is sent for the initial state — it is the subscribe
        response."""
        prepared = self._store.prepare(query, name=name)
        with self._lock:
            answers = list(self._store.query(prepared))
            self._counter += 1
            subscription = Subscription(
                f"q{self._counter}",
                prepared,
                deliver,
                answers,
                len(self._store) - 1,
            )
            self._subscriptions[subscription.id] = subscription
            return subscription

    def unsubscribe(self, sid: str) -> bool:
        with self._lock:
            return self._subscriptions.pop(sid, None) is not None

    def get(self, sid: str) -> Subscription | None:
        return self._subscriptions.get(sid)

    def resync(self, sid: str, *, acknowledge=None) -> dict | None:
        """The full current answer state of one subscription, captured
        atomically with respect to commit processing.

        This is the load-shedding path: when a slow connection's outbox
        sheds queued diffs for ``sid``, the transport later delivers one
        coalesced ``lagged`` push built from this snapshot instead.
        ``acknowledge`` (when given) runs *inside* the manager lock just
        before the snapshot is taken — the transport uses it to clear its
        per-sid lag flag, so no diff computed against a newer state can
        sneak into the queue between snapshot and flag-clear (which would
        double-apply on the client).
        """
        with self._lock:
            if acknowledge is not None:
                acknowledge(sid)
            subscription = self._subscriptions.get(sid)
            if subscription is None:
                return None
            return {
                "sid": subscription.id,
                "query": subscription.query.name,
                "revision": subscription.revision,
                "answers": list(subscription.answers),
            }

    def _on_commit(self, revision: StoreRevision) -> None:
        with self._lock:
            self._process_commit(revision)

    def _process_commit(self, revision: StoreRevision) -> None:
        if not self._subscriptions:
            return
        delta = self._delta_source(revision)
        # Subscriptions sharing a query body converge onto one refreshed
        # answer list (one evaluation via the store's per-revision memo),
        # and subscriptions that additionally share a prior answer state
        # share the diff: with N clients on the same live query the whole
        # refresh is computed once and delivered N times.  Diff keys hold
        # the old list alive, so id() pairs stay unambiguous for the loop.
        refreshed: dict[int, list] = {}
        diffs: dict[tuple[int, int], tuple] = {}
        for subscription in list(self._subscriptions.values()):
            if not subscription.query.signature.affected_by(delta):
                subscription.revision = revision.index
                subscription.skipped += 1
                continue
            query_key = id(subscription.query)
            new_answers = refreshed.get(query_key)
            if new_answers is None:
                new_answers = list(self._store.query(subscription.query))
                refreshed[query_key] = new_answers
            diff_key = (query_key, id(subscription.answers))
            diff = diffs.get(diff_key)
            if diff is None:
                diff = (subscription.answers, *diff_answers(subscription.answers, new_answers))
                diffs[diff_key] = diff
            _old, added, removed = diff
            subscription.answers = new_answers
            subscription.revision = revision.index
            subscription.refreshed += 1
            if not added and not removed:
                continue
            subscription.pushed += 1
            subscription.deliver(
                {
                    "push": "diff",
                    "sid": subscription.id,
                    "query": subscription.query.name,
                    "revision": revision.index,
                    "tag": revision.tag,
                    "added": added,
                    "removed": removed,
                }
            )

    def stats(self) -> dict:
        return {
            "active": len(self._subscriptions),
            "by_id": {
                sid: sub.stats() for sid, sub in self._subscriptions.items()
            },
        }

    def close(self) -> None:
        """Detach from the store (idempotent)."""
        self._store.remove_commit_listener(self._on_commit)
        with self._lock:
            self._subscriptions.clear()


def _build_delta(revision: StoreRevision) -> Delta:
    """The standalone fallback when no service shares its cached delta."""
    delta = Delta()
    delta.record(revision.added, revision.removed)
    return delta
