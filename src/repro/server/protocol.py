"""The JSON-lines wire protocol and its transport-independent dispatcher.

One message per line, each a JSON object.  Requests carry ``cmd`` plus an
optional client-chosen ``id`` echoed on the response; responses carry
``ok`` (with the command payload inlined on success, ``error`` otherwise).
Failed responses set ``retryable: true`` when a client may back off and
re-issue (optimistic-commit conflicts — which additionally carry
``conflict: true`` and the conflicting revision — and load-shedding
rejections); anything else is a terminal error for that request.

Push messages carry ``push`` instead of ``id`` and may arrive at any
point between responses, including *before* the response of the commit
that caused them:

* ``{"push": "diff", sid, query, revision, tag, added, removed}`` — one
  subscription answer diff;
* ``{"push": "lagged", sid, query, from_revision, to_revision, answers}``
  — this subscriber fell behind and its queued diffs were shed; the full
  current answer set replaces everything in ``[from_revision,
  to_revision]`` (see the server module doc for the contract);
* ``{"push": "closed", error, retryable}`` — the server is about to
  disconnect this client (outbox hard-cap overflow);
* ``{"push": "shutdown", reason}`` — graceful shutdown: no further
  requests will be answered, reconnect after the restart.

Commands::

    ping                                     liveness probe
    apply      {program, tag?, name?}        autocommit an update program
    query      {body}                        answers at the head (memoized)
    prepare    {body, name?}                 register a prepared query
    subscribe  {body, name?}                 live query; initial answers + sid
    unsubscribe{sid}
    tx-begin                                 MVCC session; pinned revision
    tx-query   {session, body}               read at the pin (footprint-tracked)
    tx-stage   {session, program, name?}     queue an update program
    tx-commit  {session, tag?}               optimistic commit (may conflict)
    tx-abort   {session}
    log        {last?}                       the revision chain (last N only)
    as-of      {revision}                    base text at a tag/index
    diff       {older, newer, include_exists?}  fact strings between revisions
    stats                                    service counters
    metrics                                  registry snapshot + Prometheus text
    slowlog    {clear?}                      slow-query/slow-commit ring buffer
    repl-sync  {from_index}                  catch-up batch of raw journal lines
    repl-stream{from_index}                  live journal stream (repl-line pushes)
    repl-fence {epoch}                       fence writes below a promotion epoch
    repl-promote {epoch?, takeover?}         promote this node to primary
    repl-retarget {primary}                  point a follower at a new primary

Protocol v3 additions (replication, see :mod:`repro.replication`):
``query``/``subscribe`` accept a ``min_revision`` read-your-writes token —
a node whose head has not reached it answers with a retryable
``ServerBusyError`` instead of serving stale answers.  ``apply`` and
``tx-commit`` accept an ``epoch`` floor (the highest fencing epoch the
client has observed); a node behind that epoch rejects the write with
``stale_epoch: true`` instead of committing onto a forked history, and
successful commit responses report the node's current ``epoch``.
``repl-stream`` subscribers receive ``{"push": "repl-line", index, epoch,
line, snapshot}`` messages carrying the primary's raw journal bytes.

The :class:`Dispatcher` maps request dicts to response dicts against a
:class:`~repro.server.service.StoreService`; the asyncio server
(:mod:`repro.server.server`) and the in-process
:func:`~repro.server.client.connect_local` client are two transports over
this one implementation, so tests of either exercise the same code.
"""

from __future__ import annotations

import json

from repro.core.errors import ReproError
from repro.lang.pretty import format_object_base
from repro.server.errors import (
    ConflictError,
    NotPrimaryError,
    ServerBusyError,
    SessionError,
    StaleEpochError,
)
from repro.server.service import Session, StoreService
from repro.storage.history import resolve_revision_ref

__all__ = [
    "encode", "decode", "ClientState", "Dispatcher",
    "PROTOCOL_VERSION", "LINE_LIMIT",
]

PROTOCOL_VERSION = 3

#: Per-frame byte ceiling for both transports' stream readers.  asyncio's
#: default readline limit is 64 KiB; one ``as-of`` response carries a whole
#: formatted object base on a single line, which overruns that on a few
#: thousand facts and would kill the connection.
LINE_LIMIT = 32 * 1024 * 1024


def encode(message: dict) -> bytes:
    """One wire frame: compact JSON plus the line terminator."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode(line: bytes | str) -> dict:
    """Parse one frame; raises :class:`ReproError` on garbage so transports
    can answer with a protocol error instead of dying."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ReproError(f"malformed request line: {error}") from None
    if not isinstance(message, dict):
        raise ReproError("request must be a JSON object")
    return message


class ClientState:
    """Per-connection state: open sessions, live subscriptions, and the
    push sink the transport provided (a queue writer for sockets, a list
    append for the in-process client)."""

    def __init__(self, deliver) -> None:
        self.deliver = deliver
        self.sessions: dict[str, Session] = {}
        self.subscription_ids: list[str] = []
        #: Detach callables of this connection's ``repl-stream`` attachments.
        self.repl_detach: list = []


class Dispatcher:
    """Transport-independent request handling for one service."""

    def __init__(self, service: StoreService) -> None:
        self.service = service

    def handle(self, request: dict, state: ClientState) -> dict:
        """One request in, one response out (pushes go via ``state.deliver``).

        The contract holds for *any* JSON object: a type-malformed request
        (non-string command, a number where text belongs) earns an
        ``ok: false`` response, never an exception that would tear down
        the transport's connection."""
        request_id = request.get("id")
        if not isinstance(request_id, (int, str, type(None))):
            request_id = None
        command = request.get("cmd")
        handler = _HANDLERS.get(command) if isinstance(command, str) else None
        if handler is None:
            return self._error(request_id, f"unknown command {command!r}")
        try:
            payload = handler(self, request, state)
        except ConflictError as conflict:
            response = self._error(request_id, str(conflict))
            response.update(
                conflict=True,
                retryable=True,
                pinned=conflict.pinned,
                conflicting_index=conflict.conflicting_index,
                conflicting_tag=conflict.conflicting_tag,
            )
            return response
        except StaleEpochError as error:
            response = self._error(request_id, str(error))
            response.update(
                stale_epoch=True,
                retryable=True,
                current_epoch=error.current_epoch,
                required_epoch=error.required_epoch,
            )
            return response
        except NotPrimaryError as error:
            response = self._error(request_id, str(error))
            response.update(not_primary=True, retryable=True)
            return response
        except ReproError as error:
            response = self._error(request_id, str(error))
            if getattr(error, "retryable", False):
                # the typed-retryable contract: clients branch on this
                # field (backoff + re-issue) instead of matching strings
                response["retryable"] = True
            return response
        except Exception as error:  # malformed payloads must not kill the link
            return self._error(
                request_id,
                f"bad {command!r} request: {error.__class__.__name__}: {error}",
            )
        response = {"id": request_id, "ok": True}
        response.update(payload)
        return response

    def close(self, state: ClientState) -> None:
        """Connection teardown: abort open sessions, drop subscriptions."""
        for session in state.sessions.values():
            session.abort()
        state.sessions.clear()
        for sid in state.subscription_ids:
            self.service.subscriptions.unsubscribe(sid)
        state.subscription_ids.clear()
        for detach in state.repl_detach:
            detach()
        state.repl_detach.clear()

    @staticmethod
    def _error(request_id, message: str) -> dict:
        return {"id": request_id, "ok": False, "error": message}

    def _session(self, request: dict, state: ClientState) -> Session:
        session_id = request.get("session")
        session = state.sessions.get(session_id)
        if session is None:
            raise SessionError(f"unknown session {session_id!r} on this connection")
        return session

    def _revision_payload(self, revision) -> dict:
        """One revision as the wire's uniform record shape (shared by
        ``apply``, ``tx-commit`` and ``log``, and decoded by the connection
        facade into its :class:`~repro.api.model.Revision` records)."""
        return {
            "index": revision.index,
            "tag": revision.tag,
            "program": revision.program_name,
            "added": len(revision.added),
            "removed": len(revision.removed),
            "snapshot": self.service.store.has_snapshot(revision.index),
        }

    def _check_min_revision(self, request: dict) -> None:
        """The read-your-writes gate: a client that committed revision N on
        the primary may demand ``min_revision: N`` from a follower; until
        the stream catches up the read is shed (retryable) instead of
        silently answering from the past."""
        token = request.get("min_revision")
        if token is None:
            return
        if not isinstance(token, int) or isinstance(token, bool):
            raise ReproError(f"min_revision must be an integer, got {token!r}")
        head = len(self.service.store) - 1
        if head < token:
            raise ServerBusyError(
                f"read-your-writes token not satisfied: this node is at "
                f"revision {head}, the read demands {token}; replication "
                f"is catching up — retry shortly"
            )

    # -- command handlers --------------------------------------------------
    def _cmd_ping(self, request, state) -> dict:
        pong = {
            "pong": True,
            "protocol": PROTOCOL_VERSION,
            "role": self.service.role,
            "epoch": self.service.epoch,
            "revision": len(self.service.store) - 1,
        }
        if self.service.shard_id is not None:
            pong["shard"] = {
                "id": self.service.shard_id,
                "count": self.service.shard_count,
            }
        return pong

    def _coerced_program(self, request):
        """The request's program, parsed, with the optional ``name`` field
        applied (so journals record the caller's program name)."""
        program = self.service.coerce_program(_required(request, "program"))
        name = request.get("name")
        if isinstance(name, str) and name:
            program.name = name
        return program

    def _cmd_apply(self, request, state) -> dict:
        self.service.check_epoch(request.get("epoch"))
        outcome = self.service.apply(
            self._coerced_program(request), tag=request.get("tag", "")
        )
        revision = outcome.revision
        return {
            "revision": revision.index,
            "tag": revision.tag,
            "added": outcome.added,
            "removed": outcome.removed,
            "epoch": self.service.epoch,
            "revisions": [self._revision_payload(r) for r in outcome.revisions],
        }

    def _cmd_query(self, request, state) -> dict:
        self._check_min_revision(request)
        answers = self.service.query(_required(request, "body"))
        return {
            "answers": list(answers),
            "revision": len(self.service.store) - 1,
        }

    def _cmd_prepare(self, request, state) -> dict:
        prepared = self.service.prepare(
            _required(request, "body"), name=request.get("name")
        )
        return {"name": prepared.name, "literals": len(prepared.body)}

    def _cmd_subscribe(self, request, state) -> dict:
        self._check_min_revision(request)
        subscription = self.service.subscriptions.subscribe(
            _required(request, "body"), state.deliver, name=request.get("name")
        )
        state.subscription_ids.append(subscription.id)
        return {
            "sid": subscription.id,
            "query": subscription.query.name,
            "revision": subscription.revision,
            "answers": list(subscription.answers),
        }

    def _cmd_unsubscribe(self, request, state) -> dict:
        sid = _required(request, "sid")
        # Connections may only cancel their own subscriptions — sids are
        # sequential and guessable, so a global removal would let any
        # client silently cut off another's live query.
        if sid not in state.subscription_ids:
            return {"removed": False}
        state.subscription_ids.remove(sid)
        return {"removed": self.service.subscriptions.unsubscribe(sid)}

    def _cmd_tx_begin(self, request, state) -> dict:
        session = self.service.begin()
        state.sessions[session.id] = session
        return {"session": session.id, "revision": session.pinned}

    def _cmd_tx_query(self, request, state) -> dict:
        session = self._session(request, state)
        answers = session.query(_required(request, "body"))
        return {"answers": list(answers), "revision": session.pinned}

    def _cmd_tx_stage(self, request, state) -> dict:
        session = self._session(request, state)
        session.stage(self._coerced_program(request))
        return {"staged": len(session.staged)}

    def _cmd_tx_commit(self, request, state) -> dict:
        session = self._session(request, state)
        self.service.check_epoch(request.get("epoch"))
        try:
            outcome = session.commit(tag=request.get("tag", ""))
        finally:
            if session.state != "open":
                state.sessions.pop(session.id, None)
        return {
            "revision": outcome.revision.index,
            "revisions": [self._revision_payload(r) for r in outcome.revisions],
            "added": outcome.added,
            "removed": outcome.removed,
            "epoch": self.service.epoch,
        }

    def _cmd_tx_abort(self, request, state) -> dict:
        session = self._session(request, state)
        session.abort()
        state.sessions.pop(session.id, None)
        return {"aborted": True}

    def _cmd_log(self, request, state) -> dict:
        revisions = self.service.store.revisions()
        last = request.get("last")
        if isinstance(last, int) and not isinstance(last, bool) and last > 0:
            revisions = revisions[-last:]
        return {
            "revisions": [
                self._revision_payload(revision) for revision in revisions
            ]
        }

    def _cmd_as_of(self, request, state) -> dict:
        reference = resolve_revision_ref(_required(request, "revision"))
        base = self.service.store.as_of(reference)
        return {"facts": format_object_base(base), "count": len(base)}

    def _cmd_diff(self, request, state) -> dict:
        added, removed = self.service.store.diff(
            resolve_revision_ref(_required(request, "older")),
            resolve_revision_ref(_required(request, "newer")),
            include_exists=bool(request.get("include_exists", False)),
        )
        return {
            "added": sorted(str(fact) for fact in added),
            "removed": sorted(str(fact) for fact in removed),
        }

    def _cmd_stats(self, request, state) -> dict:
        return {"stats": self.service.stats()}

    def _cmd_metrics(self, request, state) -> dict:
        """The metrics endpoint: the registry snapshot plus its
        Prometheus-style text exposition (HTTP-free — scrape it with
        ``repro client metrics``).  Gauges are refreshed first so every
        scrape sees point-in-time session/subscription/replication values.
        """
        from repro.obs import metrics as obs

        self.service.record_gauges()
        return {
            "enabled": obs.metrics_enabled(),
            "metrics": obs.registry().snapshot(),
            "text": obs.render_prometheus(),
        }

    def _cmd_slowlog(self, request, state) -> dict:
        """Dump (and optionally clear) the slow-operation ring buffer."""
        from repro.obs import slowlog as slowlog_module

        log = slowlog_module.slowlog()
        payload = {"slowlog": self.service.slowlog()}
        if request.get("clear"):
            log.clear()
            payload["cleared"] = True
        return payload

    # -- replication handlers ----------------------------------------------
    def _from_index(self, request) -> int:
        from_index = request.get("from_index", 0)
        if not isinstance(from_index, int) or isinstance(from_index, bool) \
                or from_index < 0:
            raise ReproError(
                f"from_index must be a non-negative integer, got {from_index!r}"
            )
        return from_index

    def _cmd_repl_sync(self, request, state) -> dict:
        from repro.replication.stream import hub_for  # lazy: optional layer

        return hub_for(self.service).sync(self._from_index(request))

    def _cmd_repl_stream(self, request, state) -> dict:
        from repro.replication.stream import hub_for

        # Catch-up entries are delivered as pushes *before* this response
        # is enqueued; the attach runs under the writer queue, so nothing
        # can commit between the catch-up read and the live listener.
        detach, head, epoch = hub_for(self.service).attach(
            state.deliver, self._from_index(request)
        )
        state.repl_detach.append(detach)
        return {"streaming": True, "head": head, "epoch": epoch}

    def _cmd_repl_fence(self, request, state) -> dict:
        epoch = _required(request, "epoch")
        if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 1:
            raise ReproError(f"epoch must be a positive integer, got {epoch!r}")
        return {
            "fenced": self.service.fence(epoch),
            "epoch": self.service.epoch,
        }

    def _cmd_repl_promote(self, request, state) -> dict:
        epoch = request.get("epoch")
        if epoch is not None and (
            not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 1
        ):
            raise ReproError(f"epoch must be a positive integer, got {epoch!r}")
        control = self.service.replication_control
        if control is not None:
            new_epoch = control.promote(
                epoch=epoch, takeover=request.get("takeover")
            )
        elif self.service.role == "primary":
            # Idempotent on an unfenced primary; a *fenced* one re-promotes
            # under a fresh epoch (an operator's deliberate fail-back).
            new_epoch = (
                self.service.promote(epoch=epoch)
                if self.service.store.epoch < self.service._fenced_epoch
                or epoch is not None
                else self.service.epoch
            )
        else:
            new_epoch = self.service.promote(epoch=epoch)
        return {"role": self.service.role, "epoch": new_epoch}

    def _cmd_repl_retarget(self, request, state) -> dict:
        primary = _required(request, "primary")
        control = self.service.replication_control
        if control is None:
            raise ReproError(
                "this node has no replication link to retarget (it is not "
                "running as `repro replica`)"
            )
        control.retarget(str(primary))
        return {"primary": str(primary)}


def _required(request: dict, field: str):
    value = request.get(field)
    if value is None:
        raise ReproError(f"command {request.get('cmd')!r} needs a {field!r} field")
    return value


_HANDLERS = {
    "ping": Dispatcher._cmd_ping,
    "apply": Dispatcher._cmd_apply,
    "query": Dispatcher._cmd_query,
    "prepare": Dispatcher._cmd_prepare,
    "subscribe": Dispatcher._cmd_subscribe,
    "unsubscribe": Dispatcher._cmd_unsubscribe,
    "tx-begin": Dispatcher._cmd_tx_begin,
    "tx-query": Dispatcher._cmd_tx_query,
    "tx-stage": Dispatcher._cmd_tx_stage,
    "tx-commit": Dispatcher._cmd_tx_commit,
    "tx-abort": Dispatcher._cmd_tx_abort,
    "log": Dispatcher._cmd_log,
    "as-of": Dispatcher._cmd_as_of,
    "diff": Dispatcher._cmd_diff,
    "stats": Dispatcher._cmd_stats,
    "metrics": Dispatcher._cmd_metrics,
    "slowlog": Dispatcher._cmd_slowlog,
    "repl-sync": Dispatcher._cmd_repl_sync,
    "repl-stream": Dispatcher._cmd_repl_stream,
    "repl-fence": Dispatcher._cmd_repl_fence,
    "repl-promote": Dispatcher._cmd_repl_promote,
    "repl-retarget": Dispatcher._cmd_repl_retarget,
}
