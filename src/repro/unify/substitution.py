"""Substitutions: finite mappings from variables to object-id-terms.

Because the language is sorted (variables denote objects, DESIGN.md D2), a
binding always maps a :class:`~repro.core.terms.Var` to an
:class:`~repro.core.terms.Oid` or to another :class:`~repro.core.terms.Var` —
never to a compound version-id-term.  This keeps substitutions idempotent
after path compression and makes the occurs check unnecessary.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.core.errors import TermError
from repro.core.terms import Oid, Term, Var, VersionId, VersionVar

__all__ = ["Substitution", "apply_term", "resolve"]


def _binding_allowed(var: Var, value: Term) -> bool:
    """Plain variables take object-id-terms; version variables (the
    Section 6 extension) may also take proper version-id-terms."""
    if isinstance(value, VersionId):
        return isinstance(var, VersionVar)
    return isinstance(value, (Oid, Var))


def resolve(term: Term, binding: Mapping[Var, Term]) -> Term:
    """Follow variable-to-variable links in ``binding`` starting at ``term``.

    Returns the final representative: an OID, an unbound variable, or the
    input itself when it is not a variable.
    """
    seen = 0
    while isinstance(term, Var) and term in binding:
        term = binding[term]
        seen += 1
        if seen > len(binding):  # pragma: no cover - defensive
            raise TermError("cyclic variable binding")
    return term


def apply_term(term: Term, binding: Mapping[Var, Term]) -> Term:
    """Apply ``binding`` to ``term``, rebuilding functor structure.

    ``apply_term(mod(E), {E: phil}) == mod(phil)``.
    """
    if isinstance(term, VersionId):
        base = apply_term(term.base, binding)
        if base is term.base:
            return term
        return VersionId(term.kind, base)
    if isinstance(term, Var):
        value = resolve(term, binding)
        if isinstance(value, VersionId) and value is not term:
            # A version variable's value may itself contain bound variables.
            return apply_term(value, binding)
        return value
    return term


class Substitution:
    """An immutable substitution with cheap functional extension.

    The matcher threads plain dicts internally for speed; this class is the
    public, value-semantics view used by the unification API and by tests.
    """

    __slots__ = ("_binding",)

    def __init__(self, binding: Mapping[Var, Term] | None = None):
        items: dict[Var, Term] = {}
        if binding:
            for var, value in binding.items():
                if not isinstance(var, Var):
                    raise TermError(f"substitution keys must be variables, got {var!r}")
                if not _binding_allowed(var, value):
                    raise TermError(
                        "substitution values must be object-id-terms "
                        f"(sorted unification, DESIGN.md D2), got {value!r}"
                    )
                items[var] = value
        self._binding = items

    # -- mapping protocol -------------------------------------------------
    def __contains__(self, var: Var) -> bool:
        return var in self._binding

    def __getitem__(self, var: Var) -> Term:
        return self._binding[var]

    def get(self, var: Var, default: Term | None = None) -> Term | None:
        return self._binding.get(var, default)

    def __len__(self) -> int:
        return len(self._binding)

    def __iter__(self) -> Iterator[Var]:
        return iter(self._binding)

    def items(self):
        return self._binding.items()

    def as_dict(self) -> dict[Var, Term]:
        """A mutable copy of the underlying mapping."""
        return dict(self._binding)

    # -- operations --------------------------------------------------------
    def bind(self, var: Var, value: Term) -> "Substitution":
        """Return a new substitution extended with ``var -> value``."""
        if not _binding_allowed(var, value):
            raise TermError(
                f"cannot bind {var} to {value}: variables range over OIDs only"
            )
        extended = dict(self._binding)
        extended[var] = value
        return Substitution(extended)

    def apply(self, term: Term) -> Term:
        """Apply this substitution to a term."""
        return apply_term(term, self._binding)

    def compose(self, other: "Substitution") -> "Substitution":
        """The substitution equivalent to applying ``self`` then ``other``."""
        merged: dict[Var, Term] = {
            var: resolve(apply_term(value, other._binding), other._binding)
            for var, value in self._binding.items()
        }
        for var, value in other._binding.items():
            merged.setdefault(var, value)
        return Substitution(merged)

    def restrict(self, variables) -> "Substitution":
        """Keep only the bindings for ``variables``."""
        wanted = set(variables)
        return Substitution(
            {var: value for var, value in self._binding.items() if var in wanted}
        )

    def is_ground_on(self, variables) -> bool:
        """True when every variable in ``variables`` resolves to an OID."""
        return all(isinstance(resolve(v, self._binding), Oid) for v in variables)

    # -- value semantics -----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._binding == other._binding

    def __hash__(self) -> int:
        return hash(frozenset(self._binding.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{v}->{t}" for v, t in sorted(
            self._binding.items(), key=lambda item: item[0].name
        ))
        return f"{{{inner}}}"
