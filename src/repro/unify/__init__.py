"""Sorted unification and substitutions over version-id-terms.

This subpackage is the deductive substrate shared by the stratification
conditions of Section 4 (which are phrased via unification of
version-id-terms) and by the rule matcher of the evaluation engine.

The unification is *sorted*: variables range over the set ``O`` of object
identities only (Section 2.1), so a variable unifies with an OID or another
variable but never with a proper version-id-term.  See DESIGN.md, D2.
"""

from repro.unify.substitution import Substitution, apply_term
from repro.unify.unification import match_term, unifiable, unify, unify_terms

__all__ = [
    "Substitution",
    "apply_term",
    "unify",
    "unify_terms",
    "unifiable",
    "match_term",
]
