"""Sorted unification of version-id-terms (DESIGN.md D2).

Stratification conditions (a)-(d) of Section 4 ask whether one rule's head
version-id-term "unifies with a subterm of" another rule's version-id-term.
The unification used there — and by the rule matcher — is *sorted*: variables
are quantified over the set ``O`` of object identities, so a variable may be
bound to an OID or to another variable, but never to a proper
version-id-term.

This sort discipline is semantically load-bearing:

* ``mod(E)`` does **not** unify with the bare variable ``X`` — so the
  recursive ancestor program of Section 2.3 forms a single stratum;
* ``E`` does **not** unify with ``mod(peter)`` — so rule 1 of the
  hypothetical-reasoning example sits strictly below rule 2 exactly as
  footnote 3 of the paper requires.
"""

from __future__ import annotations

from repro.core.terms import Oid, Term, Var, VersionId, VersionVar, subterms
from repro.unify.substitution import Substitution, resolve

__all__ = ["unify_terms", "unify", "unifiable", "match_term"]


def unify_terms(
    left: Term, right: Term, binding: dict[Var, Term] | None = None
) -> dict[Var, Term] | None:
    """Unify two version-id-terms under the sort discipline.

    Returns the (possibly extended) binding dict on success, ``None`` on
    failure.  The input ``binding`` is never mutated on failure; on success a
    new dict is returned.
    """
    work = dict(binding) if binding else {}
    if _unify_into(left, right, work):
        return work
    return None


def _unify_into(left: Term, right: Term, binding: dict[Var, Term]) -> bool:
    left = resolve(left, binding)
    right = resolve(right, binding)
    if left == right:
        return True
    if isinstance(left, Var):
        return _bind(left, right, binding)
    if isinstance(right, Var):
        return _bind(right, left, binding)
    if isinstance(left, VersionId) and isinstance(right, VersionId):
        if left.kind is not right.kind:
            return False
        return _unify_into(left.base, right.base, binding)
    # Oid vs Oid with different values, or Oid vs VersionId: no unifier.
    return False


def _bind(var: Var, value: Term, binding: dict[Var, Term]) -> bool:
    """Bind ``var`` to ``value`` if the sort discipline allows it."""
    if isinstance(value, VersionId):
        if not isinstance(var, VersionVar):
            # Variables range over O: a proper version-id-term is out of sort.
            return False
        # Occurs check — only version variables can reach compound values.
        if any(sub == var for sub in subterms(value)):
            return False
    binding[var] = value
    return True


def unify(left: Term, right: Term) -> Substitution | None:
    """Public wrapper returning a :class:`Substitution` (or ``None``)."""
    result = unify_terms(left, right)
    if result is None:
        return None
    # Normalise var->var chains so the substitution is idempotent.
    flat = {var: resolve(var, result) for var in result}
    return Substitution(flat)


def unifiable(left: Term, right: Term) -> bool:
    """True when the two terms have a (sorted) unifier.

    Rule-level checks must treat the two rules' variables as disjoint; the
    stratification module renames variables apart before calling this.
    """
    return unify_terms(left, right) is not None


def match_term(
    pattern: Term, ground: Term, binding: dict[Var, Term] | None = None
) -> dict[Var, Term] | None:
    """One-way matching of a (possibly non-ground) pattern against a VID.

    Used by the evaluation engine: the ground side comes from the object
    base, so bindings flow only from pattern variables to ground OIDs.  A
    pattern variable matches an :class:`Oid` only — matching ``X`` against
    ``mod(phil)`` fails, which is precisely why the salary-raise rule of
    Section 2.1 fires once per employee and never on updated versions.

    Returns the extended binding dict, or ``None`` when the match fails.
    The input binding is not mutated; when the pattern binds nothing new the
    input dict itself is returned (callers extend bindings copy-on-write, so
    the matcher avoids one dict copy per candidate fact — by far its most
    frequent operation).
    """
    node_p, node_g = pattern, ground
    while True:
        if isinstance(node_p, VersionId):
            if not isinstance(node_g, VersionId) or node_p.kind is not node_g.kind:
                return None
            node_p, node_g = node_p.base, node_g.base
            continue
        if isinstance(node_p, Var):
            if binding is not None:
                bound = binding.get(node_p)
                if bound is not None:
                    return binding if bound == node_g else None
            if not isinstance(node_g, Oid) and not isinstance(node_p, VersionVar):
                return None  # out of sort: plain variables take OIDs only
            work = dict(binding) if binding is not None else {}
            work[node_p] = node_g
            return work
        # pattern node is an Oid
        if node_p == node_g:
            return binding if binding is not None else {}
        return None
