"""The one result model of the unified connection API.

Every backend of :func:`repro.connect` — in-memory, journaled, served —
answers in exactly these shapes:

* query answers are the canonical rows of
  :func:`repro.core.query.decode_answers` (value-equal to ``repro.query``
  on the same base, in the same deterministic order);
* commits come back as :class:`Revision` records (counts, not fact sets —
  the shape that survives the wire unchanged);
* subscription pushes are :class:`AnswerDelta` records carrying the
  ``(added, removed)`` answer rows of one commit;
* revision-to-revision comparisons are :class:`Diff` records of formatted
  fact strings (identical text on every backend).

The differential parity suite (``tests/api/test_backend_parity.py``) runs
one scripted workload through all three backends and asserts these records
are *identical* — the contract every future backend must meet.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import ReproError
from repro.core.query import Answer, decode_answers

__all__ = ["Revision", "CommitResult", "AnswerDelta", "Diff", "RetryPolicy"]


@dataclass(frozen=True)
class Revision:
    """One committed revision, as every backend reports it.

    ``added``/``removed`` are fact *counts* (the full sets live in the
    store/journal; fetch them with :meth:`~repro.api.Connection.diff`);
    ``snapshot`` says whether the store materialized a full base at this
    revision under its snapshot policy.
    """

    index: int
    tag: str
    program: str | None
    added: int
    removed: int
    snapshot: bool = False

    @classmethod
    def from_store(cls, store, revision) -> "Revision":
        """Build from a :class:`~repro.storage.history.StoreRevision`."""
        return cls(
            index=revision.index,
            tag=revision.tag,
            program=revision.program_name,
            added=len(revision.added),
            removed=len(revision.removed),
            snapshot=store.has_snapshot(revision.index),
        )

    @classmethod
    def from_record(cls, record: dict) -> "Revision":
        """Build from a wire revision payload (``log``/``apply``/
        ``tx-commit`` entries)."""
        return cls(
            index=record["index"],
            tag=record["tag"],
            program=record.get("program"),
            added=record.get("added", 0),
            removed=record.get("removed", 0),
            snapshot=bool(record.get("snapshot", False)),
        )


@dataclass(frozen=True)
class CommitResult:
    """What one committed transaction (or autocommit) produced.

    ``revisions`` holds one :class:`Revision` per staged program in stage
    order; ``attempts`` is how many optimistic attempts the commit took
    (1 unless conflict retry kicked in).
    """

    revisions: tuple[Revision, ...]
    attempts: int = 1

    @property
    def revision(self) -> Revision:
        """The last (newest) revision of the batch."""
        return self.revisions[-1]

    @property
    def added(self) -> int:
        return sum(revision.added for revision in self.revisions)

    @property
    def removed(self) -> int:
        return sum(revision.removed for revision in self.revisions)


@dataclass(frozen=True)
class AnswerDelta:
    """One pushed subscription update: the ``(added, removed)`` answer rows
    of a commit that changed a live query's answers.

    ``lagged`` deltas are *coalesced*: the stream fell behind (a slow
    consumer was load-shed, or the connection was re-established after a
    server restart) and this one delta catches it up across every missed
    revision.  Folding it is exactly as correct as folding each missed
    diff in turn — only per-commit attribution (``tag``) is lost.
    """

    sid: str
    query: str
    revision: int
    tag: str
    added: tuple[Answer, ...]
    removed: tuple[Answer, ...]
    lagged: bool = False

    @classmethod
    def from_push(cls, push: dict) -> "AnswerDelta":
        return cls(
            sid=push.get("sid", ""),
            query=push.get("query", ""),
            revision=push.get("revision", -1),
            tag=push.get("tag", ""),
            added=tuple(decode_answers(push.get("added", []))),
            removed=tuple(decode_answers(push.get("removed", []))),
            lagged=bool(push.get("lagged", False)),
        )

    def as_push(self) -> dict:
        """The delta as the wire's push-message shape (JSON-ready).

        A coalesced delta keeps the ``diff`` kind — its ``(added,
        removed)`` was computed against the stream's own folded state, so
        it folds exactly like any commit diff — but carries a ``lagged``
        marker so consumers can tell a catch-up from a live commit.
        """
        push = {
            "push": "diff",
            "sid": self.sid,
            "query": self.query,
            "revision": self.revision,
            "tag": self.tag,
            "added": [dict(row) for row in self.added],
            "removed": [dict(row) for row in self.removed],
        }
        if self.lagged:
            push["lagged"] = True
        return push


@dataclass(frozen=True)
class RetryPolicy:
    """Reconnect-and-retry behaviour for served connections.

    Passed to ``repro.connect(target, retry=RetryPolicy(...))``, it makes a
    :class:`~repro.api.wire.WireConnection` survive a server restart: on a
    dropped connection the client redials with exponential backoff plus
    jitter, re-establishes its live subscriptions (each stream receives one
    coalesced *lagged* delta spanning the outage), and transparently
    re-issues the request that failed — but only when that request is
    **safe** (reads, subscribes, pings).  Mutations (``apply``, transaction
    commits) are never replayed automatically: the server may have
    committed them before the link died, and a blind re-issue would
    double-apply.  Those surface the retryable
    :class:`~repro.server.errors.ConnectionClosed` instead, for the caller
    to decide.

    ``attempts`` bounds redials per outage; attempt ``n`` sleeps
    ``min(max_delay, base_delay * 2**n)`` scaled by a uniform jitter in
    ``[1 - jitter, 1 + jitter]`` (decorrelates client herds after a
    restart).
    """

    attempts: int = 8
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ReproError("RetryPolicy needs attempts >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("RetryPolicy delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ReproError("RetryPolicy jitter must be within [0, 1]")

    def delay(self, attempt: int, *, rng=random.random) -> float:
        """The backoff sleep before redial ``attempt`` (0-based)."""
        base = min(self.max_delay, self.base_delay * (2 ** attempt))
        return base * (1 - self.jitter + 2 * self.jitter * rng())


@dataclass(frozen=True)
class Diff:
    """``(added, removed)`` fact strings between two revisions.

    Facts travel as their concrete one-line text (``host.method -> result``),
    sorted — the representation that is byte-identical whether computed
    locally or requested over the wire.  Unpacks like the two-tuple the
    store's ``diff`` returns: ``added, removed = conn.diff(a, b)``.
    """

    added: tuple[str, ...]
    removed: tuple[str, ...]

    def __iter__(self):
        return iter((self.added, self.removed))

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)
