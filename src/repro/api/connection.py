"""The :class:`Connection` surface every backend implements.

One semantics, one surface: a :class:`Connection` obtained from
:func:`repro.connect` behaves identically whether it wraps an ephemeral
in-memory store, a journaled store directory, or a running server — same
answer rows, same :class:`~repro.api.model.Revision` records, same
exceptions (everything derives from
:class:`~repro.core.errors.ReproError`; optimistic-commit losses are the
retryable :class:`~repro.server.errors.ConflictError` on every backend).

Three interaction styles:

* **autocommit** — :meth:`Connection.apply` runs one update-program
  against the head and commits it;
* **optimistic transactions** — ``with conn.transaction() as tx:`` pins a
  revision, records reads and staged programs, and commits on exit;
  ``transaction(attempts=N)`` transparently *replays* the recorded
  operations on a fresh pin when the commit loses its validation race
  (use :meth:`Connection.run_transaction` when the transaction body's
  Python logic depends on the values it read — that re-runs your code,
  not a recording);
* **live queries** — :meth:`Connection.subscribe` returns a
  :class:`SubscriptionStream`: the initial answers plus a blocking
  iterator of :class:`~repro.api.model.AnswerDelta` pushes.
"""

from __future__ import annotations

import queue
import time
from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.api.model import AnswerDelta, CommitResult, Diff, Revision
from repro.core.objectbase import ObjectBase
from repro.core.query import Answer, decode_answers, diff_answers, fold_answers
from repro.server.errors import ConflictError, ServerError, SessionError

__all__ = ["Connection", "Transaction", "SubscriptionStream"]

#: Transaction lifecycle states.
OPEN, COMMITTED, ABORTED = "open", "committed", "aborted"


class Connection(ABC):
    """One handle over one deployment of the update-language store.

    Context-manageable; :meth:`close` releases backend resources (sockets,
    subscription registrations).  All methods raise
    :class:`~repro.core.errors.ReproError` subclasses on failure.
    """

    #: Human-readable target this connection was opened on (``memory:``,
    #: a journal directory, ``unix:/path``, ``tcp:host:port``).
    target: str = ""

    def __init__(self) -> None:
        self._closed = False
        self._streams: list[SubscriptionStream] = []

    # -- liveness ----------------------------------------------------------
    @abstractmethod
    def ping(self) -> dict:
        """Liveness probe: ``{"pong": True, "protocol": N}``."""

    # -- reading -----------------------------------------------------------
    @abstractmethod
    def query(self, body, *, min_revision: int | None = None) -> list[Answer]:
        """Answer a conjunctive query (concrete-syntax text) against the
        head revision.  Rows are canonical decoded answers — value-equal
        to ``repro.query`` on the same base, on every backend.

        ``min_revision`` is the read-your-writes token of replicated
        serving: a node whose head has not reached that revision waits
        briefly for replication, then sheds the read with a retryable
        :class:`~repro.server.errors.ServerBusyError` rather than answer
        from the past.  (On a single-node backend the head always
        satisfies any token it issued.)"""

    @abstractmethod
    def log(self) -> tuple[Revision, ...]:
        """The whole revision chain, oldest first."""

    @property
    def head(self) -> Revision:
        """The newest revision's record."""
        return self.log()[-1]

    @abstractmethod
    def as_of(self, revision) -> ObjectBase:
        """The full object base as of a revision (tag, index, or the
        digit-string form of an index — identical addressing everywhere)."""

    @abstractmethod
    def diff(self, older, newer, *, include_exists: bool = False) -> Diff:
        """``(added, removed)`` fact strings between two revisions."""

    # -- writing -----------------------------------------------------------
    @abstractmethod
    def apply(self, program, *, tag: str = "") -> Revision:
        """Autocommit one update-program (text or
        :class:`~repro.core.rules.UpdateProgram`) against the head."""

    @abstractmethod
    def transaction(self, *, tag: str = "", attempts: int = 1) -> "Transaction":
        """Begin an optimistic MVCC transaction pinned at the head.

        ``attempts > 1`` enables automatic conflict retry: a commit that
        raises :class:`ConflictError` re-begins and *replays the recorded
        reads and stages* on a fresh pin, up to ``attempts`` times.
        """

    def run_transaction(
        self,
        work: Callable[["Transaction"], object],
        *,
        attempts: int = 5,
        tag: str = "",
    ) -> CommitResult:
        """Run ``work(tx)`` in a fresh transaction, retrying the *whole
        callable* on :class:`ConflictError` — the right retry form when the
        body's logic depends on what it read."""
        self._check_open()
        last: ConflictError | None = None
        for attempt in range(1, max(1, attempts) + 1):
            transaction = self.transaction(tag=tag, attempts=1)
            try:
                work(transaction)
                result = transaction.commit()
                return CommitResult(result.revisions, attempts=attempt)
            except ConflictError as conflict:
                last = conflict
            finally:
                transaction.abort()
        raise last

    # -- live queries ------------------------------------------------------
    @abstractmethod
    def subscribe(
        self, body, *, name: str | None = None,
        min_revision: int | None = None,
    ) -> "SubscriptionStream":
        """Register a live query; returns the stream seeded with the
        current answers.  Only answer diffs travel afterwards.
        ``min_revision`` is the same read-your-writes token as on
        :meth:`query` — the seed answers are at least that fresh."""

    # -- accounting --------------------------------------------------------
    @abstractmethod
    def stats(self) -> dict:
        """Backend counters (commits, conflicts, subscriptions, memos)."""

    # -- lifecycle ---------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the connection (idempotent).  Live streams are closed."""
        if self._closed:
            return
        self._closed = True
        for stream in list(self._streams):
            stream.close()
        self._teardown()

    def _teardown(self) -> None:
        """Backend hook: release sockets/threads after streams closed."""

    def _check_open(self) -> None:
        if self._closed:
            raise ServerError(f"connection to {self.target} is closed")

    def _track(self, stream: "SubscriptionStream") -> "SubscriptionStream":
        self._streams.append(stream)
        stream._unregister = lambda: self._untrack(stream)
        return stream

    def _untrack(self, stream: "SubscriptionStream") -> None:
        try:
            self._streams.remove(stream)
        except ValueError:  # already dropped (connection close vs. stream close)
            pass

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<{type(self).__name__} {self.target} ({state})>"


class Transaction(ABC):
    """One optimistic transaction over a :class:`Connection`.

    Reads (:meth:`query`) run against the revision pinned at begin time
    and join the conflict-validation footprint; :meth:`stage` queues
    update-programs for the commit.  As a context manager: a clean exit
    with staged programs commits, a clean exit with nothing staged (a
    read-only transaction) aborts, an exception aborts and propagates.

    Operations are *recorded*: when ``attempts > 1`` and the commit loses
    its first-committer-wins validation, the transaction re-begins on a
    fresh pin and replays the recording before committing again.  The
    replay re-executes the recorded reads and stages — it does not re-run
    arbitrary Python between them (for that, see
    :meth:`Connection.run_transaction`).
    """

    def __init__(self, *, tag: str = "", attempts: int = 1) -> None:
        self._tag = tag
        self._attempts = max(1, attempts)
        self._ops: list[tuple[str, object]] = []
        self._staged_count = 0
        self.state = OPEN
        self.result: CommitResult | None = None
        self.attempts_used = 0

    # -- backend plumbing --------------------------------------------------
    @property
    @abstractmethod
    def pinned(self) -> int:
        """The revision index this transaction currently reads at."""

    @abstractmethod
    def _begin(self) -> None:
        """Open a fresh backend session (also used by conflict replay)."""

    @abstractmethod
    def _do_query(self, body) -> list[Answer]: ...

    @abstractmethod
    def _do_stage(self, program) -> None: ...

    @abstractmethod
    def _do_commit(self, tag: str) -> CommitResult: ...

    @abstractmethod
    def _do_abort(self) -> None: ...

    # -- the uniform surface ----------------------------------------------
    def query(self, body) -> list[Answer]:
        """Read at the pinned revision; the query joins the footprint."""
        self._check_open()
        answers = self._do_query(body)
        self._ops.append(("query", body))
        return answers

    def stage(self, program) -> "Transaction":
        """Queue an update-program to run at commit."""
        self._check_open()
        self._do_stage(program)
        self._ops.append(("stage", program))
        self._staged_count += 1
        return self

    def commit(self, *, tag: str | None = None) -> CommitResult:
        """Validate and commit, retrying with replay up to the
        transaction's ``attempts``.  Raises :class:`ConflictError` when
        every attempt loses; the transaction is finished either way."""
        self._check_open()
        commit_tag = self._tag if tag is None else tag
        for attempt in range(1, self._attempts + 1):
            try:
                outcome = self._do_commit(commit_tag)
            except ConflictError:
                if attempt >= self._attempts:
                    self.state = ABORTED
                    raise
                self._replay()
                continue
            self.state = COMMITTED
            self.attempts_used = attempt
            self.result = CommitResult(outcome.revisions, attempts=attempt)
            return self.result
        raise AssertionError("unreachable")  # pragma: no cover

    def abort(self) -> None:
        """Discard the transaction (idempotent; committed stays so)."""
        if self.state == OPEN:
            self.state = ABORTED
            self._do_abort()

    def _replay(self) -> None:
        """Conflict retry: fresh pin, recorded operations re-executed."""
        self._begin()
        for kind, payload in self._ops:
            if kind == "query":
                self._do_query(payload)
            else:
                self._do_stage(payload)

    def _check_open(self) -> None:
        if self.state != OPEN:
            raise SessionError(f"transaction is already {self.state}")

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
            return
        if self.state == OPEN:
            if self._staged_count:
                self.commit()
            else:
                self.abort()


class SubscriptionStream:
    """A live query: the initial answers plus a stream of answer deltas.

    ``answers`` always holds the full decoded answer set as of the last
    delta consumed (the subscribe-time seed, folded forward by every
    :meth:`next`); :meth:`next` blocks for the next
    :class:`~repro.api.model.AnswerDelta` (``None`` on timeout).
    Iterating yields deltas until :meth:`close`.  Commits that provably
    cannot change the answers never produce a delta — on any backend.

    When the stream falls behind — the server load-shed its queued diffs,
    or the connection was redialed after a restart — the next delta is a
    coalesced one (``delta.lagged`` is true): its ``(added, removed)`` is
    the exact answer diff between the last state this stream saw and the
    current resynchronized state, so folding stays correct across the gap.
    An outage whose resync shows *no* answer change produces no delta at
    all (the revision still advances).
    """

    def __init__(
        self,
        *,
        sid: str,
        query: str,
        revision: int,
        answers: Sequence[Answer],
        pushes: "queue.Queue[dict]",
        closer: Callable[[], None],
    ) -> None:
        self.sid = sid
        self.query = query
        self.revision = revision
        self.answers = list(answers)
        self._pushes = pushes
        self._closer = closer
        self._unregister: Callable[[], None] | None = None
        self._closed = False

    def next(self, timeout: float | None = None) -> AnswerDelta | None:
        """The next answer delta; blocks up to ``timeout`` seconds
        (forever when ``None``), returns ``None`` when none arrived.
        Closing the stream — even from another thread, mid-block — makes
        this return ``None``, never raise, so consumer loops end cleanly."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._closed:
                return None
            try:
                if deadline is None:
                    push = self._pushes.get()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        push = self._pushes.get_nowait()
                    else:
                        push = self._pushes.get(timeout=remaining)
            except queue.Empty:
                return None
            if push is _STREAM_CLOSED:
                return None
            delta = self._ingest(push)
            if delta is not None:
                return delta
            # an empty resync (or an unknown push kind): nothing for the
            # consumer; keep waiting out the original deadline

    def _ingest(self, push: dict) -> AnswerDelta | None:
        """Fold one push message into the stream state; ``None`` when the
        push carries nothing the consumer needs to see."""
        kind = push.get("push", "diff")
        if kind == "diff":
            delta = AnswerDelta.from_push(push)
            self.answers = fold_answers(self.answers, delta.added, delta.removed)
            self.revision = delta.revision
            return delta
        if kind == "lagged":
            # Coalesced catch-up: the push carries the full current answer
            # set; the delta the consumer sees is the diff against the last
            # state *this* stream reached, so folding stays exact.
            current = decode_answers(push.get("answers", []))
            added, removed = diff_answers(self.answers, current)
            self.answers = list(current)
            self.revision = push.get(
                "to_revision", push.get("revision", self.revision)
            )
            if not added and not removed:
                return None
            return AnswerDelta(
                sid=self.sid,
                query=self.query,
                revision=self.revision,
                tag=push.get("tag", ""),
                added=tuple(added),
                removed=tuple(removed),
                lagged=True,
            )
        return None  # forward compatibility: ignore unknown push kinds

    def __iter__(self):
        while not self._closed:
            delta = self.next()
            if delta is None:
                return
            yield delta

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unsubscribe (idempotent).  Wakes any thread blocked in
        :meth:`next` and drops this stream from its connection's books."""
        if not self._closed:
            self._closed = True
            self._closer()
            self._pushes.put(_STREAM_CLOSED)
            if self._unregister is not None:
                self._unregister()

    def _mark_dead(self) -> None:
        """Terminate without the unsubscribe round-trip: the connection is
        gone for good (retry exhausted, or no policy).  Safe to call from
        the wire backend's loop thread — no network, no locks."""
        if not self._closed:
            self._closed = True
            self._pushes.put(_STREAM_CLOSED)
            if self._unregister is not None:
                self._unregister()

    def __enter__(self) -> "SubscriptionStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Queue sentinel: the stream closed while a consumer was blocked in next().
_STREAM_CLOSED = object()
