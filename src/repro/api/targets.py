"""One grammar for every ``repro.connect`` target string.

Historically each scheme (``serve:``/``unix:``/``tcp:``/``replset:``) was
parsed ad hoc inside :func:`repro.connect`; every new backend re-derived
the same splitting and the same failure wording.  :func:`parse_target` is
now the single entry: it classifies a target into a typed
:class:`ParsedTarget` and raises a clean
:class:`~repro.core.errors.ReproError` — never a traceback-only
``ValueError``/``IndexError`` — for every malformed form.

Schemes
-------

``memory:``
    An ephemeral in-process store.
``serve:<endpoint>`` / ``unix:<path>`` / ``tcp:<host>:<port>``
    One running server (a bare path naming a *live* unix socket also
    resolves here).
``replset:<endpoint>,<endpoint>,...``
    A replicated deployment; reads fail over across members, mutations
    follow the primary.
``cluster:<shard>,<shard>,...``
    A hash-partitioned deployment (one shard per comma-separated spec, in
    shard-index order).  A spec may itself be a ``|``-separated member
    list, which makes that shard a replica set:
    ``cluster:unix:a.sock,unix:b1.sock|unix:b2.sock`` is a two-shard
    cluster whose second shard fails over between two members.
anything else
    A journal directory path.
"""

from __future__ import annotations

import stat
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.errors import ReproError

__all__ = ["ParsedTarget", "parse_target", "wire_endpoint"]

#: Scheme prefixes that may never appear nested inside a member spec.
_NESTED_SCHEMES = ("memory:", "replset:", "cluster:")


@dataclass(frozen=True)
class ParsedTarget:
    """One classified connect target.

    ``scheme`` is one of ``"memory"``, ``"wire"``, ``"replset"``,
    ``"cluster"`` or ``"journal"``.  Exactly the fields of that scheme are
    populated: ``endpoint`` (wire kwargs: ``{"path": ...}`` or ``{"host":
    ..., "port": ...}``), ``members`` (replica-set endpoints), ``shards``
    (one member tuple per shard, shard-index order) or ``path`` (journal
    directory).
    """

    scheme: str
    text: str
    endpoint: dict | None = None
    members: tuple[str, ...] = ()
    shards: tuple[tuple[str, ...], ...] = field(default=())
    path: Path | None = None


def parse_target(target) -> ParsedTarget:
    """Classify ``target`` (a string or path; see the module doc).

    Malformed targets raise :class:`~repro.core.errors.ReproError` with a
    message naming the offending piece — the one failure surface every
    scheme shares.
    """
    if isinstance(target, Path):
        return ParsedTarget(scheme="journal", text=str(target), path=target)
    if not isinstance(target, str):
        raise ReproError(
            f"connect() needs a target string, path, StoreService or "
            f"VersionedStore, not {type(target).__name__}"
        )
    text = target
    if text == "memory:":
        return ParsedTarget(scheme="memory", text=text)
    if text.startswith("replset:"):
        members = _split_members(
            text[len("replset:"):], scheme="replset", what="member endpoint"
        )
        return ParsedTarget(scheme="replset", text=text, members=members)
    if text.startswith("cluster:"):
        return ParsedTarget(
            scheme="cluster", text=text, shards=_split_shards(text)
        )
    endpoint = wire_endpoint(text)
    if endpoint is not None:
        return ParsedTarget(scheme="wire", text=text, endpoint=endpoint)
    return ParsedTarget(scheme="journal", text=text, path=Path(text))


def _split_members(rest: str, *, scheme: str, what: str) -> tuple[str, ...]:
    members = tuple(part.strip() for part in rest.split(",") if part.strip())
    if not members:
        raise ReproError(
            f"{scheme}: target needs at least one {what} after the colon"
        )
    for member in members:
        _check_member(member, scheme=scheme)
    return members

def _split_shards(text: str) -> tuple[tuple[str, ...], ...]:
    shards: list[tuple[str, ...]] = []
    specs = [part.strip() for part in text[len("cluster:"):].split(",")]
    for position, spec in enumerate(specs):
        if not spec:
            if position == len(specs) - 1:
                continue  # a forgiving trailing comma, like replset:
            raise ReproError(
                f"cluster: shard {position} is empty — every "
                f"comma-separated spec must name at least one endpoint"
            )
        members = tuple(
            member.strip() for member in spec.split("|") if member.strip()
        )
        if not members:
            raise ReproError(
                f"cluster: shard {position} is empty — every "
                f"comma-separated spec must name at least one endpoint"
            )
        for member in members:
            _check_member(member, scheme="cluster")
        shards.append(members)
    if not shards:
        raise ReproError(
            "cluster: target needs at least one shard endpoint after the "
            "colon"
        )
    return tuple(shards)


def _check_member(member: str, *, scheme: str) -> None:
    for nested in _NESTED_SCHEMES:
        if member.startswith(nested):
            raise ReproError(
                f"{scheme}: members must be plain served endpoints "
                f"(serve:/unix:/tcp:/socket path), not {member!r}"
            )
    # Validate explicit wire schemes eagerly so a typo fails at connect
    # time; bare paths are left alone — a member may simply be down.
    if member.startswith(("serve:", "unix:", "tcp:")):
        wire_endpoint(member)


def wire_endpoint(text: str) -> dict | None:
    """Parse a served target into :class:`~repro.api.wire.WireConnection`
    kwargs, or ``None`` when the target is not a served endpoint."""
    if text.startswith("serve:"):
        rest = text[len("serve:"):]
        inner = wire_endpoint(rest)
        if inner is not None:
            return inner
        host_port = _host_port(rest)
        if host_port is not None:
            return host_port
        if not rest:
            raise ReproError("serve: target needs an endpoint after the colon")
        return {"path": rest}
    if text.startswith("unix:"):
        path = text[len("unix:"):]
        if not path:
            raise ReproError("unix: target needs a socket path")
        return {"path": path}
    if text.startswith("tcp:"):
        host_port = _host_port(text[len("tcp:"):])
        if host_port is None:
            raise ReproError(f"tcp: target needs host:port, got {text!r}")
        return host_port
    try:
        if stat.S_ISSOCK(Path(text).stat().st_mode):
            return {"path": text}
    except OSError:
        pass
    return None


def _host_port(text: str) -> dict | None:
    host, separator, port = text.rpartition(":")
    if separator and host and port.isdigit():
        return {"host": host, "port": int(port)}
    return None
