"""Hosting helper: run a ``repro`` server on a background thread.

:class:`BackgroundServer` wraps :class:`~repro.server.server.ReproServer`
in a private event loop thread so synchronous code (tests, examples, small
embedders) can stand up a real served endpoint and connect to it with
``repro.connect(server.target)`` — the exact transport the parity suite
uses to prove the served backend agrees with the in-process ones.
Production deployments still run ``repro serve`` as its own process.
"""

from __future__ import annotations

from repro.api.wire import _EventLoopThread
from repro.core.errors import ReproError
from repro.server.server import ReproServer, ServerLimits
from repro.server.service import StoreService
from repro.storage.history import VersionedStore

__all__ = ["BackgroundServer"]


class BackgroundServer:
    """One served endpoint over one service, on a daemon thread.

    ``source`` is a :class:`StoreService`, a :class:`VersionedStore`
    (wrapped), or a journal directory (opened as the journal's writer).
    Endpoint selection mirrors ``repro serve``: a unix-socket ``path`` or a
    TCP ``port`` (0 picks a free port).  ``limits`` are the transport's
    backpressure knobs (:class:`~repro.server.server.ServerLimits`).
    """

    def __init__(
        self,
        source,
        *,
        path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        limits: ServerLimits | None = None,
    ) -> None:
        if path is None and port is None:
            raise ReproError("BackgroundServer needs path=... or port=...")
        self.service = self._coerce_service(source)
        self._server = ReproServer(
            self.service, path=path, host=host,
            port=port if port is not None else 0, limits=limits,
        )
        self._loop = _EventLoopThread("repro-background-server")
        self._closed = False
        try:
            self._loop.run(self._server.start(), timeout=30)
        except Exception as error:  # bind failures surface to the caller
            self._loop.stop()
            raise ReproError(f"server failed to start: {error}") from error

    @staticmethod
    def _coerce_service(source) -> StoreService:
        if isinstance(source, StoreService):
            return source
        if isinstance(source, VersionedStore):
            return StoreService(source)
        return StoreService.open(source)

    @property
    def address(self) -> str:
        """Printable endpoint (``unix:…`` / ``tcp:host:port``)."""
        return self._server.address

    @property
    def target(self) -> str:
        """The :func:`repro.connect` target string for this endpoint."""
        return f"serve:{self.address}"

    @property
    def server(self) -> ReproServer:
        """The wrapped transport (shedding counters, limits)."""
        return self._server

    def shutdown(self, *, deadline: float | None = None) -> None:
        """Graceful stop: no new connections, in-flight work finishes,
        outboxes flush within ``deadline``, then the loop is released.
        Idempotent, and interchangeable with :meth:`close`."""
        if self._closed:
            return
        self._closed = True
        budget = deadline if deadline is not None else (
            self._server.limits.shutdown_deadline
        )
        try:
            self._loop.run(
                self._server.shutdown(deadline=deadline), timeout=budget + 10
            )
        finally:
            self._loop.stop()

    def close(self) -> None:
        """Stop serving and release the loop thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._loop.run(self._server.close(), timeout=10)
        finally:
            self._loop.stop()

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
