"""The served backend: a synchronous facade over the asyncio wire client.

A :class:`WireConnection` owns a private event loop on a daemon thread and
drives one :class:`~repro.server.client.AsyncClient` through it, so the
unified connection surface stays synchronous and identical to the
in-process backends.  Push messages are routed off the client's push queue
by subscription id into per-stream queues (a router task on the loop), so
several live queries on one connection never steal each other's deltas.

Failure mapping: connect and transport failures surface as
:class:`~repro.server.errors.ServerError`; server-side errors arrive
already typed (:class:`~repro.server.errors.ConflictError` keeps its
``pinned``/``conflicting_index`` attributes across the wire) — everything
a caller sees derives from :class:`~repro.core.errors.ReproError`.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import queue
import threading

from repro.api.connection import Connection, SubscriptionStream, Transaction
from repro.api.model import CommitResult, Diff, Revision
from repro.core.objectbase import ObjectBase
from repro.core.query import Answer, decode_answers
from repro.core.rules import UpdateProgram
from repro.lang.parser import parse_object_base
from repro.lang.pretty import format_program
from repro.server.client import AsyncClient
from repro.server.errors import ServerError
from repro.storage.history import resolve_revision_ref

__all__ = ["WireConnection"]


class _EventLoopThread:
    """One private event loop running on a daemon thread."""

    def __init__(self, name: str) -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def run(self, coro, timeout: float | None = None):
        """Run a coroutine on the loop, blocking the calling thread."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise ServerError(
                f"server did not answer within {timeout:g}s"
            ) from None

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5)
        self.loop.close()


class WireConnection(Connection):
    """A connection to a running ``repro serve`` endpoint.

    ``call_timeout`` bounds every request round-trip (``None`` waits
    forever — pushes are unaffected either way).
    """

    def __init__(
        self,
        *,
        path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        call_timeout: float | None = None,
    ) -> None:
        super().__init__()
        self.target = f"unix:{path}" if path is not None else f"tcp:{host}:{port}"
        self.call_timeout = call_timeout
        self._push_queues: dict[str, "queue.Queue[dict]"] = {}
        self._unclaimed: "queue.Queue[dict]" = queue.Queue()
        self._loop = _EventLoopThread(f"repro-wire[{self.target}]")
        self._client: AsyncClient | None = None
        self._router: asyncio.Future | None = None
        try:
            self._loop.run(self._connect(path, host, port), timeout=30)
        except (ConnectionError, OSError) as error:
            self._loop.stop()
            raise ServerError(
                f"cannot connect to {self.target}: {error}"
            ) from None
        except Exception:
            self._loop.stop()
            raise

    async def _connect(self, path, host, port) -> None:
        self._client = await AsyncClient.connect(path=path, host=host, port=port)
        self._router = asyncio.ensure_future(self._route_pushes())

    async def _route_pushes(self) -> None:
        """Dispatch push messages to their stream's queue by ``sid``;
        pushes for unknown sids (raw ``call("subscribe")`` users, the CLI
        script command) collect in the unclaimed queue."""
        while True:
            push = await self._client.next_push()
            sink = self._push_queues.get(push.get("sid"))
            (sink if sink is not None else self._unclaimed).put(push)

    # -- raw protocol access ----------------------------------------------
    def call(self, cmd: str, **payload) -> dict:
        """One protocol command, raising the typed error on failure — the
        escape hatch for commands the facade does not wrap."""
        self._check_open()
        return self._run(self._client.call(cmd, **payload))

    def request(self, cmd: str, **payload) -> dict:
        """Like :meth:`call` but returning error responses as dicts
        (``ok: false``) instead of raising — raw scripting."""
        self._check_open()
        return self._run(self._client.request(cmd, **payload))

    def drain_pushes(self) -> list[dict]:
        """Pushes that arrived for subscriptions made through raw
        :meth:`call`/:meth:`request` (no stream routing), without waiting."""
        drained = []
        while True:
            try:
                drained.append(self._unclaimed.get_nowait())
            except queue.Empty:
                return drained

    def _run(self, coro):
        try:
            return self._loop.run(coro, timeout=self.call_timeout)
        except (ConnectionError, OSError) as error:
            raise ServerError(
                f"connection to {self.target} failed: {error}"
            ) from None

    # -- liveness ----------------------------------------------------------
    def ping(self) -> dict:
        response = self.call("ping")
        return {"pong": response["pong"], "protocol": response["protocol"]}

    # -- reading -----------------------------------------------------------
    def query(self, body) -> list[Answer]:
        response = self.call("query", body=_body_text(body))
        return decode_answers(response["answers"])

    def log(self) -> tuple[Revision, ...]:
        response = self.call("log")
        return tuple(
            Revision.from_record(record) for record in response["revisions"]
        )

    @property
    def head(self) -> Revision:
        # one record over the wire, not the whole chain
        response = self.call("log", last=1)
        return Revision.from_record(response["revisions"][-1])

    def as_of(self, revision) -> ObjectBase:
        response = self.call("as-of", revision=resolve_revision_ref(revision))
        return parse_object_base(response["facts"]).freeze()

    def diff(self, older, newer, *, include_exists: bool = False) -> Diff:
        response = self.call(
            "diff",
            older=resolve_revision_ref(older),
            newer=resolve_revision_ref(newer),
            include_exists=include_exists or None,
        )
        return Diff(
            added=tuple(response["added"]), removed=tuple(response["removed"])
        )

    # -- writing -----------------------------------------------------------
    def apply(self, program, *, tag: str = "") -> Revision:
        response = self.call(
            "apply",
            program=_program_text(program),
            tag=tag,
            name=_program_name(program),
        )
        return Revision.from_record(response["revisions"][-1])

    def transaction(self, *, tag: str = "", attempts: int = 1) -> "_WireTransaction":
        self._check_open()
        return _WireTransaction(self, tag=tag, attempts=attempts)

    # -- live queries ------------------------------------------------------
    def subscribe(self, body, *, name: str | None = None) -> SubscriptionStream:
        self._check_open()
        pushes: "queue.Queue[dict]" = queue.Queue()
        response = self.call("subscribe", body=_body_text(body), name=name)
        sid = response["sid"]
        self._run(self._claim_pushes(sid, pushes))
        stream = SubscriptionStream(
            sid=sid,
            query=response["query"],
            revision=response["revision"],
            answers=decode_answers(response["answers"]),
            pushes=pushes,
            closer=lambda: self._unsubscribe(sid),
        )
        return self._track(stream)

    async def _claim_pushes(self, sid: str, pushes: "queue.Queue[dict]") -> None:
        """Register a stream's queue and reclaim any pushes that raced the
        registration into the unclaimed queue.  Runs on the loop thread —
        the same thread as the router — so no push can be routed while the
        sweep is rehoming, which keeps delivery order intact."""
        self._push_queues[sid] = pushes
        leftovers = []
        while True:
            try:
                push = self._unclaimed.get_nowait()
            except queue.Empty:
                break
            if push.get("sid") == sid:
                pushes.put(push)
            else:
                leftovers.append(push)
        for push in leftovers:
            self._unclaimed.put(push)

    def _unsubscribe(self, sid: str) -> None:
        self._push_queues.pop(sid, None)
        if not self._closed:
            try:
                self.call("unsubscribe", sid=sid)
            except ServerError:  # connection already torn down server-side
                pass

    # -- accounting --------------------------------------------------------
    def stats(self) -> dict:
        return self.call("stats")["stats"]

    # -- lifecycle ---------------------------------------------------------
    def _teardown(self) -> None:
        try:
            self._loop.run(self._shutdown(), timeout=10)
        except Exception:  # tearing down a dead link is best-effort
            pass
        finally:
            self._loop.stop()

    async def _shutdown(self) -> None:
        if self._router is not None:
            self._router.cancel()
        if self._client is not None:
            await self._client.close()


class _WireTransaction(Transaction):
    """MVCC session plumbing for the served backend."""

    def __init__(self, conn: WireConnection, *, tag: str, attempts: int) -> None:
        super().__init__(tag=tag, attempts=attempts)
        self._conn = conn
        self._session: str | None = None
        self._pinned = -1
        self._begin()

    @property
    def pinned(self) -> int:
        return self._pinned

    def _begin(self) -> None:
        response = self._conn.call("tx-begin")
        self._session = response["session"]
        self._pinned = response["revision"]

    def _do_query(self, body) -> list[Answer]:
        response = self._conn.call(
            "tx-query", session=self._session, body=_body_text(body)
        )
        return decode_answers(response["answers"])

    def _do_stage(self, program) -> None:
        self._conn.call(
            "tx-stage",
            session=self._session,
            program=_program_text(program),
            name=_program_name(program),
        )

    def _do_commit(self, tag: str) -> CommitResult:
        response = self._conn.call("tx-commit", session=self._session, tag=tag)
        return CommitResult(
            tuple(Revision.from_record(r) for r in response["revisions"])
        )

    def _do_abort(self) -> None:
        try:
            self._conn.call("tx-abort", session=self._session)
        except ServerError:  # already gone server-side (conflict, teardown)
            pass


def _body_text(body) -> str:
    """Queries travel as concrete-syntax text."""
    if isinstance(body, str):
        return body
    raise ServerError(
        f"a served connection needs query bodies as concrete-syntax text, "
        f"not {type(body).__name__}"
    )


def _program_name(program) -> str | None:
    """A non-default program name travels alongside the text (the wire
    payload's optional ``name`` field), so journals record the same
    program name whichever backend committed it."""
    if isinstance(program, UpdateProgram) and program.name != "program":
        return program.name
    return None


def _program_text(program) -> str:
    """Programs travel as concrete-syntax text; :class:`UpdateProgram`
    objects are pretty-printed (names survive the trip via the payload's
    ``name`` field)."""
    if isinstance(program, str):
        return program
    if isinstance(program, UpdateProgram):
        return format_program(program)
    raise ServerError(
        f"a served connection needs update programs as text or "
        f"UpdateProgram, not {type(program).__name__}"
    )
