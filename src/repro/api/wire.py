"""The served backend: a synchronous facade over the asyncio wire client.

A :class:`WireConnection` owns a private event loop on a daemon thread and
drives one :class:`~repro.server.client.AsyncClient` through it, so the
unified connection surface stays synchronous and identical to the
in-process backends.  Push messages are routed off the client's push queue
by subscription id into per-stream queues (a router task on the loop), so
several live queries on one connection never steal each other's deltas.

Failure mapping: connect and transport failures surface as
:class:`~repro.server.errors.ServerError`; server-side errors arrive
already typed (:class:`~repro.server.errors.ConflictError` keeps its
``pinned``/``conflicting_index`` attributes across the wire) — everything
a caller sees derives from :class:`~repro.core.errors.ReproError`.

**Reconnect.**  With a :class:`~repro.api.model.RetryPolicy`, a dropped
link is not terminal: the connection redials with exponential backoff plus
jitter, re-subscribes every live query, and hands each stream one
coalesced *lagged* delta spanning the outage (the stream diffs the resync
answers against its own folded state, so folding stays exact across a
server restart).  Only **safe** commands — reads, subscribes, pings — are
re-issued transparently; a mutation that was in flight when the link died
surfaces :class:`~repro.server.errors.ConnectionClosed` (retryable) for
the caller, because the server may already have committed it.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import queue
import threading
import time

from repro.api.connection import Connection, SubscriptionStream, Transaction
from repro.api.model import CommitResult, Diff, RetryPolicy, Revision
from repro.core.errors import ReproError
from repro.core.objectbase import ObjectBase
from repro.core.query import Answer, decode_answers
from repro.core.rules import UpdateProgram
from repro.lang.parser import parse_object_base
from repro.lang.pretty import format_program
from repro.server.client import AsyncClient, _raise_for
from repro.server.errors import ConnectionClosed, ServerBusyError, ServerError
from repro.storage.history import resolve_revision_ref

__all__ = ["WireConnection"]

#: Commands safe to re-issue on a fresh connection after a drop: they read,
#: register, or cancel — never mutate the store.  ``apply`` and the ``tx-*``
#: family are deliberately absent: the server may have committed the lost
#: request before the link died, and replaying would double-apply.
_SAFE_COMMANDS = frozenset(
    {"ping", "query", "prepare", "log", "as-of", "diff", "stats",
     "metrics", "slowlog", "subscribe", "unsubscribe"}
)

#: Redial timeout per attempt (matches the initial-connect bound).
_DIAL_TIMEOUT = 30.0

#: How long a ``min_revision`` read polls a lagging replica before the
#: retryable busy error surfaces to the caller.
_MIN_REVISION_WAIT = 10.0


class _LiveSub:
    """Book-keeping for one live subscription: everything needed to
    re-establish it on a fresh connection."""

    __slots__ = ("sid", "body", "name", "pushes", "stream")

    def __init__(self, *, sid, body, name, pushes, stream) -> None:
        self.sid = sid
        self.body = body
        self.name = name
        self.pushes = pushes
        self.stream = stream


class _EventLoopThread:
    """One private event loop running on a daemon thread."""

    def __init__(self, name: str) -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def run(self, coro, timeout: float | None = None):
        """Run a coroutine on the loop, blocking the calling thread."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise ServerError(
                f"server did not answer within {timeout:g}s"
            ) from None

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5)
        self.loop.close()


class WireConnection(Connection):
    """A connection to a running ``repro serve`` endpoint.

    ``call_timeout`` bounds every request round-trip (``None`` waits
    forever — pushes are unaffected either way).  ``retry`` (a
    :class:`~repro.api.model.RetryPolicy`) enables transparent reconnect
    after a dropped link — see the module doc for what is and is not
    re-issued.
    """

    def __init__(
        self,
        *,
        path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        call_timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        super().__init__()
        self.target = f"unix:{path}" if path is not None else f"tcp:{host}:{port}"
        self.call_timeout = call_timeout
        self.retry = retry
        self._endpoint = {"path": path, "host": host, "port": port}
        self._push_queues: dict[str, "queue.Queue[dict]"] = {}
        self._unclaimed: "queue.Queue[dict]" = queue.Queue()
        self._subs: dict[str, _LiveSub] = {}
        self._loop = _EventLoopThread(f"repro-wire[{self.target}]")
        self._client: AsyncClient | None = None
        self._router: asyncio.Future | None = None
        self._reconnecting: asyncio.Future | None = None
        self.reconnects = 0
        try:
            self._loop.run(self._dial(), timeout=_DIAL_TIMEOUT + 5)
        except (ConnectionError, OSError) as error:
            self._loop.stop()
            raise ServerError(
                f"cannot connect to {self.target}: {error}"
            ) from None
        except Exception:
            self._loop.stop()
            raise

    async def _dial(self) -> None:
        """(Re)establish the client and its push router.  Loop thread."""
        if self._router is not None:
            self._router.cancel()
            self._router = None
        if self._client is not None:
            await self._client.close()
            self._client = None
        client = await asyncio.wait_for(
            AsyncClient.connect(**self._endpoint), _DIAL_TIMEOUT
        )
        self._client = client
        self._router = asyncio.ensure_future(self._route_pushes(client))

    async def _route_pushes(self, client: AsyncClient) -> None:
        """Dispatch push messages to their stream's queue by ``sid``;
        pushes for unknown sids (raw ``call("subscribe")`` users, the CLI
        script command) collect in the unclaimed queue.  When the link
        dies the router either kicks off a reconnect (retry policy set) or
        terminates every stream so blocked consumers wake."""
        try:
            while True:
                push = await client.next_push()
                sink = self._push_queues.get(push.get("sid"))
                (sink if sink is not None else self._unclaimed).put(push)
        except ConnectionClosed:
            if self._closed or client is not self._client:
                return  # deliberate teardown, or an already-replaced link
            if self.retry is not None:
                self._start_reconnect()
            else:
                self._fail_streams()

    # -- reconnect ---------------------------------------------------------
    def _start_reconnect(self) -> asyncio.Future:
        """Begin (or join) the single in-flight reconnect.  Loop thread."""
        if self._reconnecting is None or self._reconnecting.done():
            task = asyncio.ensure_future(self._reconnect())
            # consume the exception when no _invoke is waiting on it (the
            # router kicked this off); waiters still see it via shield
            task.add_done_callback(
                lambda fut: fut.cancelled() or fut.exception()
            )
            self._reconnecting = task
        return self._reconnecting

    async def _reconnect(self) -> None:
        """Redial with backoff, then re-establish every live subscription.
        Raises :class:`ConnectionClosed` — and terminates the streams —
        when the policy's attempts are exhausted."""
        policy = self.retry
        failure: Exception | None = None
        for attempt in range(policy.attempts):
            if self._closed:
                failure = ServerError("connection closed during reconnect")
                break
            try:
                await asyncio.sleep(policy.delay(attempt))
                await self._dial()
                await self._resubscribe()
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    ReproError) as error:
                failure = error
                continue
            self.reconnects += 1
            return
        self._fail_streams()
        raise ConnectionClosed(
            f"cannot re-establish {self.target} after "
            f"{policy.attempts} attempts: {failure}"
        )

    async def _resubscribe(self) -> None:
        """Re-register every live stream on the fresh connection and queue
        each one coalesced ``lagged`` push carrying the resync answers.
        The stream folds it against its own last-seen state, so consumers
        observe one exact catch-up delta instead of a gap."""
        for old_sid, sub in list(self._subs.items()):
            if sub.stream.closed:
                self._subs.pop(old_sid, None)
                self._push_queues.pop(old_sid, None)
                continue
            response = await self._client.call(
                "subscribe", body=sub.body, name=sub.name
            )
            new_sid = response["sid"]
            self._subs.pop(old_sid, None)
            self._push_queues.pop(old_sid, None)
            sub.sid = new_sid
            sub.stream.sid = new_sid
            self._subs[new_sid] = sub
            self._push_queues[new_sid] = sub.pushes
            sub.pushes.put(
                {
                    "push": "lagged",
                    "sid": new_sid,
                    "query": response["query"],
                    "from_revision": sub.stream.revision,
                    "to_revision": response["revision"],
                    "revision": response["revision"],
                    "tag": "",
                    "answers": response["answers"],
                }
            )

    def _fail_streams(self) -> None:
        """The link is gone for good: wake and terminate every stream so
        blocked consumers end cleanly instead of hanging.  Loop thread."""
        for sub in list(self._subs.values()):
            sub.stream._mark_dead()
        self._subs.clear()
        self._push_queues.clear()

    # -- raw protocol access ----------------------------------------------
    def call(self, cmd: str, **payload) -> dict:
        """One protocol command, raising the typed error on failure — the
        escape hatch for commands the facade does not wrap."""
        self._check_open()
        return self._run(self._invoke(cmd, payload))

    def request(self, cmd: str, **payload) -> dict:
        """Like :meth:`call` but returning error responses as dicts
        (``ok: false``) instead of raising — raw scripting."""
        self._check_open()
        return self._run(self._invoke(cmd, payload, raw=True))

    async def _invoke(self, cmd: str, payload: dict, *, raw: bool = False):
        """One request with the reconnect funnel: a live client carries it;
        a dead one triggers (or joins) the reconnect first.  A request that
        dies *after* it may have reached the server is re-issued only for
        safe commands — everything else surfaces the retryable
        :class:`ConnectionClosed` to the caller."""
        attempts = 1 + (self.retry.attempts if self.retry is not None else 0)
        for _ in range(attempts):
            client = self._client
            if client is None or not client.alive:
                # nothing sent yet: any command may wait out a reconnect
                await self._await_reconnect(cmd, sent=False)
                client = self._client
            try:
                send = client.request(cmd, **payload)
                if self.call_timeout is not None:
                    response = await asyncio.wait_for(send, self.call_timeout)
                else:
                    response = await send
            except asyncio.TimeoutError:
                raise ServerError(
                    f"server did not answer within {self.call_timeout:g}s"
                ) from None
            except ConnectionClosed:
                # the link died with the request possibly delivered: only
                # safe commands may be blindly re-issued
                await self._await_reconnect(cmd, sent=True)
                continue
            return response if raw else _raise_for(response)
        raise ConnectionClosed(
            f"request {cmd!r} kept losing its connection to {self.target}"
        )

    async def _await_reconnect(self, cmd: str, *, sent: bool) -> None:
        """Block until the shared reconnect lands; refuse when the command
        must not be replayed (or there is no policy to replay under)."""
        if self._closed:
            raise ServerError(f"connection to {self.target} is closed")
        if self.retry is None:
            raise ConnectionClosed(
                f"connection to {self.target} was lost (no retry policy; "
                f"pass retry=RetryPolicy(...) to reconnect automatically)"
            )
        if sent and cmd not in _SAFE_COMMANDS:
            raise ConnectionClosed(
                f"connection to {self.target} was lost with {cmd!r} in "
                f"flight; it is not automatically re-issued — the server "
                f"may have already applied it"
            )
        await asyncio.shield(self._start_reconnect())

    def drain_pushes(self) -> list[dict]:
        """Pushes that arrived for subscriptions made through raw
        :meth:`call`/:meth:`request` (no stream routing), without waiting."""
        drained = []
        while True:
            try:
                drained.append(self._unclaimed.get_nowait())
            except queue.Empty:
                return drained

    def _run(self, coro):
        try:
            return self._loop.run(coro, timeout=self._deadline())
        except (ConnectionError, OSError) as error:
            raise ServerError(
                f"connection to {self.target} failed: {error}"
            ) from None

    def _deadline(self) -> float | None:
        """The blocking bound for one facade call: the per-request timeout
        plus, under a retry policy, the worst-case reconnect budget (the
        request timeout is enforced per attempt inside :meth:`_invoke`)."""
        if self.call_timeout is None:
            return None
        if self.retry is None:
            # margin: the in-coroutine wait_for fires first with the
            # precise "did not answer" error; this bound is the backstop
            return self.call_timeout + 5.0
        policy = self.retry
        backoff = sum(
            min(policy.max_delay, policy.base_delay * (2 ** attempt))
            * (1 + policy.jitter)
            for attempt in range(policy.attempts)
        )
        per_attempt = self.call_timeout + _DIAL_TIMEOUT
        return (1 + policy.attempts) * per_attempt + backoff

    # -- liveness ----------------------------------------------------------
    def ping(self) -> dict:
        response = self.call("ping")
        return {"pong": response["pong"], "protocol": response["protocol"]}

    # -- reading -----------------------------------------------------------
    def query(self, body, *, min_revision: int | None = None) -> list[Answer]:
        response = self._call_min_revision(
            "query", min_revision, body=_body_text(body)
        )
        return decode_answers(response["answers"])

    def query_with_revision(
        self, body, *, min_revision: int | None = None
    ) -> tuple[list[Answer], int]:
        """Like :meth:`query`, also returning the head revision index the
        answers were computed at (the server stamps every query response)."""
        response = self._call_min_revision(
            "query", min_revision, body=_body_text(body)
        )
        return decode_answers(response["answers"]), response["revision"]

    def _call_min_revision(
        self, cmd: str, min_revision: int | None, **payload
    ) -> dict:
        """A read carrying a read-your-writes token: a replica that has not
        caught up sheds it with a retryable busy error — poll briefly so
        the common just-behind case resolves without surfacing it."""
        if min_revision is None:
            return self.call(cmd, **payload)
        deadline = time.monotonic() + _MIN_REVISION_WAIT
        delay = 0.02
        while True:
            try:
                return self.call(
                    cmd, min_revision=min_revision, **payload
                )
            except ServerBusyError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 0.25)

    def log(self) -> tuple[Revision, ...]:
        response = self.call("log")
        return tuple(
            Revision.from_record(record) for record in response["revisions"]
        )

    @property
    def head(self) -> Revision:
        # one record over the wire, not the whole chain
        response = self.call("log", last=1)
        return Revision.from_record(response["revisions"][-1])

    def as_of(self, revision) -> ObjectBase:
        response = self.call("as-of", revision=resolve_revision_ref(revision))
        return parse_object_base(response["facts"]).freeze()

    def diff(self, older, newer, *, include_exists: bool = False) -> Diff:
        response = self.call(
            "diff",
            older=resolve_revision_ref(older),
            newer=resolve_revision_ref(newer),
            include_exists=include_exists or None,
        )
        return Diff(
            added=tuple(response["added"]), removed=tuple(response["removed"])
        )

    # -- writing -----------------------------------------------------------
    def apply(self, program, *, tag: str = "") -> Revision:
        response = self.call(
            "apply",
            program=_program_text(program),
            tag=tag,
            name=_program_name(program),
        )
        return Revision.from_record(response["revisions"][-1])

    def transaction(self, *, tag: str = "", attempts: int = 1) -> "_WireTransaction":
        self._check_open()
        return _WireTransaction(self, tag=tag, attempts=attempts)

    # -- live queries ------------------------------------------------------
    def subscribe(
        self, body, *, name: str | None = None,
        min_revision: int | None = None,
    ) -> SubscriptionStream:
        self._check_open()
        body_text = _body_text(body)
        pushes: "queue.Queue[dict]" = queue.Queue()
        response = self._call_min_revision(
            "subscribe", min_revision, body=body_text, name=name
        )
        sid = response["sid"]
        stream = SubscriptionStream(
            sid=sid,
            query=response["query"],
            revision=response["revision"],
            answers=decode_answers(response["answers"]),
            pushes=pushes,
            closer=lambda: self._unsubscribe(stream),
        )
        sub = _LiveSub(
            sid=sid, body=body_text, name=name, pushes=pushes, stream=stream
        )
        self._run(self._claim_pushes(sub))
        return self._track(stream)

    async def _claim_pushes(self, sub: _LiveSub) -> None:
        """Register a stream's queue (and its reconnect book-keeping) and
        reclaim any pushes that raced the registration into the unclaimed
        queue.  Runs on the loop thread — the same thread as the router —
        so no push can be routed while the sweep is rehoming, which keeps
        delivery order intact."""
        self._subs[sub.sid] = sub
        self._push_queues[sub.sid] = sub.pushes
        leftovers = []
        while True:
            try:
                push = self._unclaimed.get_nowait()
            except queue.Empty:
                break
            if push.get("sid") == sub.sid:
                sub.pushes.put(push)
            else:
                leftovers.append(push)
        for push in leftovers:
            self._unclaimed.put(push)

    def _unsubscribe(self, stream: SubscriptionStream) -> None:
        sid = stream.sid
        self._push_queues.pop(sid, None)
        self._subs.pop(sid, None)
        client = self._client
        if not self._closed and client is not None and client.alive:
            try:
                self.call("unsubscribe", sid=sid)
            except ServerError:  # connection already torn down server-side
                pass

    # -- accounting --------------------------------------------------------
    def stats(self) -> dict:
        return self.call("stats")["stats"]

    # -- lifecycle ---------------------------------------------------------
    def _teardown(self) -> None:
        try:
            self._loop.run(self._shutdown(), timeout=10)
        except Exception:  # tearing down a dead link is best-effort
            pass
        finally:
            self._loop.stop()

    async def _shutdown(self) -> None:
        if self._reconnecting is not None:
            self._reconnecting.cancel()
        if self._router is not None:
            self._router.cancel()
        if self._client is not None:
            await self._client.close()


class _WireTransaction(Transaction):
    """MVCC session plumbing for the served backend."""

    def __init__(self, conn: WireConnection, *, tag: str, attempts: int) -> None:
        super().__init__(tag=tag, attempts=attempts)
        self._conn = conn
        self._session: str | None = None
        self._pinned = -1
        self._begin()

    @property
    def pinned(self) -> int:
        return self._pinned

    def _begin(self) -> None:
        response = self._conn.call("tx-begin")
        self._session = response["session"]
        self._pinned = response["revision"]

    def _do_query(self, body) -> list[Answer]:
        response = self._conn.call(
            "tx-query", session=self._session, body=_body_text(body)
        )
        return decode_answers(response["answers"])

    def _do_stage(self, program) -> None:
        self._conn.call(
            "tx-stage",
            session=self._session,
            program=_program_text(program),
            name=_program_name(program),
        )

    def _do_commit(self, tag: str) -> CommitResult:
        response = self._conn.call("tx-commit", session=self._session, tag=tag)
        return CommitResult(
            tuple(Revision.from_record(r) for r in response["revisions"])
        )

    def _do_abort(self) -> None:
        try:
            self._conn.call("tx-abort", session=self._session)
        except ServerError:  # already gone server-side (conflict, teardown)
            pass


def _body_text(body) -> str:
    """Queries travel as concrete-syntax text."""
    if isinstance(body, str):
        return body
    raise ServerError(
        f"a served connection needs query bodies as concrete-syntax text, "
        f"not {type(body).__name__}"
    )


def _program_name(program) -> str | None:
    """A non-default program name travels alongside the text (the wire
    payload's optional ``name`` field), so journals record the same
    program name whichever backend committed it."""
    if isinstance(program, UpdateProgram) and program.name != "program":
        return program.name
    return None


def _program_text(program) -> str:
    """Programs travel as concrete-syntax text; :class:`UpdateProgram`
    objects are pretty-printed (names survive the trip via the payload's
    ``name`` field)."""
    if isinstance(program, str):
        return program
    if isinstance(program, UpdateProgram):
        return format_program(program)
    raise ServerError(
        f"a served connection needs update programs as text or "
        f"UpdateProgram, not {type(program).__name__}"
    )
