"""One connection API over every backend: ``repro.connect(target)``.

The paper's update-programs are one semantics; this package gives them one
*surface*.  A :class:`Connection` answers queries, autocommits programs,
runs optimistic transactions and streams live-query answer diffs — and
behaves identically whether it wraps an ephemeral in-memory store, a
durable journal directory, or a running server:

>>> import repro
>>> conn = repro.connect("memory:", base="henry.isa -> empl. henry.sal -> 250.")
>>> conn.query("E.sal -> S")
[{'E': 'henry', 'S': 250}]

Targets accepted by :func:`connect` (the grammar lives in
:mod:`repro.api.targets`):

``"memory:"``
    A fresh ephemeral store (seed it with ``base=...``).
a directory path
    A durable journal directory: opened (and appended to) when a journal
    exists, initialized from ``base=...`` when not.  ``readonly=True``
    opens without write access (and without journal repair).
``"serve:<endpoint>"`` / ``"unix:<path>"`` / ``"tcp:<host>:<port>"``
    A running ``repro serve`` instance; a bare path that names a live unix
    socket also connects.
``"replset:<endpoint>,<endpoint>,..."``
    A replicated deployment (``repro serve`` + ``repro replica`` members):
    reads fail over across members immediately, mutations follow the
    primary across promotions, epoch-fenced against zombie writes (see
    :mod:`repro.replication`).
``"cluster:<shard>,<shard>,..."``
    A hash-partitioned deployment: each comma-separated spec is one shard
    (a ``|``-separated spec is a replica-set shard).  Facts live on the
    shard their host OID hashes to; cross-shard reads scatter-gather and
    compose per-shard revisions into a cluster-wide revision vector (see
    :mod:`repro.cluster`).
a :class:`~repro.server.service.StoreService` or
:class:`~repro.storage.history.VersionedStore`
    Wrapped in-process as-is (embedding).

Every backend speaks the same result model (:mod:`repro.api.model`), the
same revision addressing (tags or indexes, digit strings included), and
the same :class:`~repro.core.errors.ReproError` taxonomy — optimistic
conflicts are the retryable
:class:`~repro.server.errors.ConflictError` everywhere.  The differential
parity suite (``tests/api/test_backend_parity.py``) holds the backends to
byte-identical answers, revision logs and journals, so the next backend
(sharded, replicated, remote) lands behind this same surface.
"""

from __future__ import annotations

from pathlib import Path

from repro.api.connection import Connection, SubscriptionStream, Transaction
from repro.api.hosting import BackgroundServer
from repro.api.local import ServiceConnection
from repro.api.model import AnswerDelta, CommitResult, Diff, RetryPolicy, Revision
from repro.api.targets import ParsedTarget, parse_target, wire_endpoint
from repro.api.wire import WireConnection
from repro.core.errors import ReproError
from repro.core.objectbase import ObjectBase
from repro.server.errors import (
    ConflictError,
    ConnectionClosed,
    NotPrimaryError,
    ServerBusyError,
    ServerError,
    SessionError,
    StaleEpochError,
)
from repro.server.service import StoreService
from repro.storage.history import StoreOptions, VersionedStore
from repro.storage.serialize import JOURNAL_FILE, DurabilityOptions, load_store

# Backward-compatible alias: the replication layer (and older callers)
# import the endpoint parser under its historical private name.
_wire_endpoint = wire_endpoint

__all__ = [
    "connect",
    "parse_target",
    "ParsedTarget",
    "Connection",
    "Transaction",
    "SubscriptionStream",
    "Revision",
    "CommitResult",
    "AnswerDelta",
    "Diff",
    "RetryPolicy",
    "DurabilityOptions",
    "ServiceConnection",
    "WireConnection",
    "BackgroundServer",
    "ConflictError",
    "ServerError",
    "SessionError",
    "ConnectionClosed",
    "ServerBusyError",
    "StaleEpochError",
    "NotPrimaryError",
]


def connect(
    target="memory:",
    *,
    base=None,
    tag: str = "initial",
    options: StoreOptions | None = None,
    readonly: bool = False,
    call_timeout: float | None = None,
    retry: RetryPolicy | None = None,
    durability: DurabilityOptions | None = None,
) -> Connection:
    """Open a :class:`Connection` to ``target`` (see the module doc).

    ``base`` (an :class:`ObjectBase` or concrete-syntax text) seeds a
    ``memory:`` store or initializes a fresh journal directory — it is an
    error on targets that already hold data.  ``tag`` names revision 0 of
    a newly created store; ``options`` are its
    :class:`~repro.storage.history.StoreOptions`.  ``call_timeout`` bounds
    request round-trips on served targets, and ``retry`` (a
    :class:`RetryPolicy`) makes a served connection survive server
    restarts — reconnect with backoff, re-established subscriptions,
    safe requests re-issued.  ``durability`` (a
    :class:`~repro.storage.serialize.DurabilityOptions`) picks the
    crash-safety level of a journal-directory target's writes.
    """
    if isinstance(target, StoreService):
        _reject_seed_kwargs("an existing StoreService", base, options)
        _reject_wire_kwargs("an in-process target", retry)
        _reject_durability("an existing StoreService", durability)
        return ServiceConnection(
            target, target="service:", readonly=readonly
        )
    if isinstance(target, VersionedStore):
        _reject_seed_kwargs("an existing VersionedStore", base, options)
        _reject_wire_kwargs("an in-process target", retry)
        _reject_durability("an existing VersionedStore", durability)
        return ServiceConnection(
            StoreService(target), target="store:", readonly=readonly
        )
    parsed = parse_target(target)
    if parsed.scheme == "memory":
        _reject_wire_kwargs("a memory: target", retry)
        _reject_durability("a memory: target", durability)
        store = VersionedStore(_coerce_base(base), tag=tag, options=options)
        return ServiceConnection(
            StoreService(store), target="memory:", readonly=readonly
        )
    if parsed.scheme == "replset":
        from repro.replication.replset import ReplicaSetConnection

        _reject_seed_kwargs("a replica-set target", base, options)
        _reject_durability(
            "a replica-set target (each member owns its journal)", durability
        )
        if readonly:
            raise ReproError(
                "readonly= is not supported on replset: targets; reads "
                "already spread across every member"
            )
        return ReplicaSetConnection(
            list(parsed.members), call_timeout=call_timeout, retry=retry
        )
    if parsed.scheme == "cluster":
        from repro.cluster.router import ClusterConnection

        _reject_seed_kwargs("a cluster: target", base, options)
        _reject_durability(
            "a cluster: target (each shard owns its journal)", durability
        )
        if readonly:
            raise ReproError(
                "readonly= is not supported on cluster: targets; connect "
                "to a shard's journal directory read-only instead"
            )
        return ClusterConnection(
            parsed.shards, call_timeout=call_timeout, retry=retry
        )
    if parsed.scheme == "wire":
        _reject_seed_kwargs("a served target", base, options)
        _reject_durability(
            "a served target (the server owns its journal)", durability
        )
        if readonly:
            # The server cannot be made read-only from a client; refusing
            # is safer than handing back a silently writable connection.
            raise ReproError(
                "readonly= is not supported on served targets; open the "
                "journal directory read-only instead"
            )
        return WireConnection(
            call_timeout=call_timeout, retry=retry, **parsed.endpoint
        )
    _reject_wire_kwargs("a journal-directory target", retry)
    return _connect_journal(
        parsed.path, base=base, tag=tag, options=options, readonly=readonly,
        durability=durability,
    )


def _reject_seed_kwargs(what: str, base, options) -> None:
    if base is not None:
        raise ReproError(f"base= seeds new stores; {what} already has one")
    if options is not None:
        raise ReproError(f"options= shapes new stores; {what} is already built")


def _reject_wire_kwargs(what: str, retry) -> None:
    if retry is not None:
        raise ReproError(
            f"retry= reconnects served targets; {what} has no link to lose"
        )


def _reject_durability(what: str, durability) -> None:
    if durability is not None:
        raise ReproError(
            f"durability= shapes journal-directory writes; {what} does not "
            f"take one"
        )


def _coerce_base(base) -> ObjectBase:
    if base is None:
        return ObjectBase()
    if isinstance(base, ObjectBase):
        return base
    if isinstance(base, str):
        from repro.lang.parser import parse_object_base

        return parse_object_base(base)
    raise ReproError(
        f"base= needs an ObjectBase or concrete-syntax text, not "
        f"{type(base).__name__}"
    )


def _connect_journal(
    directory: Path, *, base, tag, options, readonly, durability=None
) -> ServiceConnection:
    journal = directory / JOURNAL_FILE
    if journal.exists():
        if base is not None:
            raise ReproError(
                f"a journal already exists at {journal}; refusing to "
                f"overwrite its history — pick a fresh directory"
            )
        if readonly:
            if durability is not None:
                raise ReproError(
                    "durability= shapes writes; a readonly connection "
                    "never writes"
                )
            # Readers never repair the journal (a live appender could be
            # racing the rewrite) and never bind it for writing.
            service = StoreService(load_store(directory, options=options))
        else:
            service = StoreService.open(
                directory, options=options, durability=durability
            )
        return ServiceConnection(
            service, target=str(directory), readonly=readonly
        )
    if base is None:
        raise ReproError(
            f"no journal at {journal}; pass base=... to initialize a new "
            f"store there"
        )
    if readonly:
        raise ReproError(
            f"readonly= cannot initialize a new journal at {journal}; a "
            f"read-only connection must not write to disk"
        )
    service = StoreService.create(
        _coerce_base(base), directory, tag=tag, options=options,
        durability=durability,
    )
    return ServiceConnection(service, target=str(directory))
