"""The in-process backends: ephemeral stores and journal directories.

One :class:`ServiceConnection` serves both ``memory:`` targets (a fresh
:class:`~repro.storage.history.VersionedStore` wrapped in a
:class:`~repro.server.service.StoreService`) and journal-directory targets
(the service opened over — and appending to — the durable journal).  It
talks to the service *directly* (typed calls, frozen shared views, real
exception objects), not through the wire dispatcher; the differential
parity suite is what proves this fast path and the wire path agree.
"""

from __future__ import annotations

import queue
import time

from repro.api.connection import Connection, SubscriptionStream, Transaction
from repro.api.model import CommitResult, Diff, Revision
from repro.core.errors import ReproError
from repro.core.objectbase import ObjectBase
from repro.core.query import Answer, decode_answers
from repro.server.protocol import PROTOCOL_VERSION
from repro.server.service import Session, StoreService
from repro.storage.history import resolve_revision_ref

__all__ = ["ServiceConnection"]


class ServiceConnection(Connection):
    """A connection bound directly to a :class:`StoreService` in this
    process.  ``readonly=True`` (journal readers like ``repro store log``)
    rejects every write path and never repairs or appends the journal."""

    def __init__(
        self,
        service: StoreService,
        *,
        target: str = "memory:",
        readonly: bool = False,
    ) -> None:
        super().__init__()
        self.service = service
        self.target = target
        self.readonly = readonly

    # -- liveness ----------------------------------------------------------
    def ping(self) -> dict:
        self._check_open()
        return {"pong": True, "protocol": PROTOCOL_VERSION}

    # -- reading -----------------------------------------------------------
    def query(self, body, *, min_revision: int | None = None) -> list[Answer]:
        self._check_open()
        self._await_min_revision(min_revision)
        return decode_answers(self.service.query(body))

    def _await_min_revision(
        self, min_revision: int | None, *, deadline: float = 5.0
    ) -> None:
        """Read-your-writes on a replica served in-process: wait briefly
        for the replication stream to reach ``min_revision``, then shed the
        read (retryable) rather than answer from the past."""
        if min_revision is None:
            return
        limit = time.monotonic() + deadline
        while len(self.service.store) - 1 < min_revision:
            if time.monotonic() >= limit:
                from repro.server.errors import ServerBusyError

                raise ServerBusyError(
                    f"read-your-writes token not satisfied: node is at "
                    f"revision {len(self.service.store) - 1}, the read "
                    f"demands {min_revision} — retry shortly"
                )
            time.sleep(0.005)

    def log(self) -> tuple[Revision, ...]:
        self._check_open()
        store = self.service.store
        return tuple(
            Revision.from_store(store, revision) for revision in store.revisions()
        )

    @property
    def head(self) -> Revision:
        self._check_open()
        store = self.service.store
        return Revision.from_store(store, store.head)

    def as_of(self, revision) -> ObjectBase:
        self._check_open()
        return self.service.store.as_of(resolve_revision_ref(revision))

    def diff(self, older, newer, *, include_exists: bool = False) -> Diff:
        self._check_open()
        added, removed = self.service.store.diff(
            resolve_revision_ref(older),
            resolve_revision_ref(newer),
            include_exists=include_exists,
        )
        return Diff(
            added=tuple(sorted(str(fact) for fact in added)),
            removed=tuple(sorted(str(fact) for fact in removed)),
        )

    # -- writing -----------------------------------------------------------
    def apply(self, program, *, tag: str = "") -> Revision:
        self._check_writable()
        outcome = self.service.apply(program, tag=tag)
        return Revision.from_store(self.service.store, outcome.revision)

    def transaction(self, *, tag: str = "", attempts: int = 1) -> "_ServiceTransaction":
        self._check_writable()
        return _ServiceTransaction(self.service, tag=tag, attempts=attempts)

    # -- live queries ------------------------------------------------------
    def subscribe(
        self, body, *, name: str | None = None,
        min_revision: int | None = None,
    ) -> SubscriptionStream:
        self._check_open()
        self._await_min_revision(min_revision)
        pushes: "queue.Queue[dict]" = queue.Queue()
        subscription = self.service.subscriptions.subscribe(
            body, pushes.put, name=name
        )
        stream = SubscriptionStream(
            sid=subscription.id,
            query=subscription.query.name,
            revision=subscription.revision,
            answers=decode_answers(subscription.answers),
            pushes=pushes,
            closer=lambda: self.service.subscriptions.unsubscribe(subscription.id),
        )
        return self._track(stream)

    # -- accounting --------------------------------------------------------
    def stats(self) -> dict:
        self._check_open()
        return self.service.stats()

    # -- internal ----------------------------------------------------------
    def _check_writable(self) -> None:
        self._check_open()
        if self.readonly:
            raise ReproError(
                f"connection to {self.target} is read-only; reopen without "
                f"readonly=True to write"
            )


class _ServiceTransaction(Transaction):
    """MVCC session plumbing for the in-process backend."""

    def __init__(self, service: StoreService, *, tag: str, attempts: int) -> None:
        super().__init__(tag=tag, attempts=attempts)
        self._service = service
        self._session: Session | None = None
        self._begin()

    @property
    def pinned(self) -> int:
        return self._session.pinned

    def _begin(self) -> None:
        self._session = self._service.begin()

    def _do_query(self, body) -> list[Answer]:
        return decode_answers(self._session.query(body))

    def _do_stage(self, program) -> None:
        self._session.stage(program)

    def _do_commit(self, tag: str) -> CommitResult:
        outcome = self._session.commit(tag=tag)
        store = self._service.store
        return CommitResult(
            tuple(
                Revision.from_store(store, revision)
                for revision in outcome.revisions
            )
        )

    def _do_abort(self) -> None:
        if self._session is not None:
            self._session.abort()
