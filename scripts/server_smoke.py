#!/usr/bin/env python3
"""CI smoke test for the serving subsystem, driven entirely through the CLI.

Scenario (what the CI job runs)::

    PYTHONPATH=src python scripts/server_smoke.py

1. ``repro store init`` a journal directory from a small base;
2. start ``repro serve`` on a unix socket as a subprocess and wait for its
   readiness banner;
3. start ``repro client subscribe`` (another subprocess) on a salary query
   and wait until it printed the initial answers;
4. ``repro client apply`` a raise — the subscriber must print exactly one
   answer-diff JSON line and exit 0;
5. ``repro client tx`` an optimistic transaction with a read footprint;
6. ``repro client log`` must show the three revisions; a bad revision
   reference must exit non-zero with a clean message;
7. terminate the server (graceful drain) and check the journal kept the
   transaction;
8. restart, commit once more, then SIGKILL the server: every
   acknowledged journal byte must survive the crash, ``repro store
   verify`` must pass, and a restarted server must replay the journal
   byte-identically and serve the full history;
9. replication failover: attach a ``repro replica serve`` follower,
   SIGKILL the primary mid-subscription, ``repro replica promote
   --takeover`` the follower onto the dead primary's socket — the
   follower's journal must hold every acknowledged byte as an identical
   prefix, the reconnecting subscriber must receive exactly one
   coalesced ``lagged`` resync, and writes must resume on the old
   socket at the new fencing epoch.
10. sharded cluster: ``repro cluster init`` a 2-shard layout, ``repro
    cluster launch`` both shards, commit a single-host program to each
    shard through the ``cluster:`` router, scatter-gather a cross-shard
    query, check ``repro cluster status``; then attach a replica to one
    shard, SIGKILL that shard's primary, promote the replica, and verify
    the router (with the shard spelled ``primary|replica``) fails over
    and still returns the full, correct answer set.

Exits 0 when every step holds; prints the failing step and exits 1
otherwise.  No external dependencies beyond the repo itself.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
PYTHON = sys.executable

BASE = """
phil.isa -> empl.  phil.sal -> 4000.
bob.isa -> empl.   bob.sal -> 4200.  bob.boss -> phil.
"""

RAISE = "raise: mod[phil].sal -> (S, S2) <= phil.sal -> S, S2 = S + 100.\n"
RAISE_BOB = "raise_bob: mod[bob].sal -> (S, S2) <= bob.sal -> S, S2 = S + 50.\n"

# For the cluster step: under 2 shards, henry hashes to shard 0 and phil
# to shard 1 (crc32 placement — process-stable), so these two hosts pin
# one single-host commit to each shard and make the salary query a true
# scatter-gather read.
CLUSTER_BASE = """
phil.isa -> empl.  phil.sal -> 4000.
henry.isa -> empl. henry.sal -> 4200.
"""
RAISE_HENRY = (
    "raise_henry: mod[henry].sal -> (S, S2) <= henry.sal -> S, "
    "S2 = S + 50.\n"
)


def cli(*args: str, check: bool = True, timeout: float = 60.0):
    """Run one repro CLI invocation to completion."""
    result = subprocess.run(
        [PYTHON, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=REPO,
    )
    if check and result.returncode != 0:
        fail(
            f"`repro {' '.join(args)}` exited {result.returncode}\n"
            f"stdout: {result.stdout}\nstderr: {result.stderr}"
        )
    return result


def fail(message: str) -> None:
    print(f"SMOKE FAILURE: {message}", file=sys.stderr)
    raise SystemExit(1)


def read_lines_background(stream, sink: list, done: threading.Event) -> None:
    for line in stream:
        sink.append(line.rstrip("\n"))
    done.set()


def wait_for(predicate, what: str, timeout: float = 30.0) -> None:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    fail(f"timed out waiting for {what}")


def start_server(store_dir: Path, socket_path: Path) -> subprocess.Popen:
    return subprocess.Popen(
        [PYTHON, "-m", "repro", "serve", "--dir", str(store_dir),
         "--socket", str(socket_path)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO,
    )


def start_shard(
    store_dir: Path, socket_path: Path, shard: int, count: int
) -> subprocess.Popen:
    return subprocess.Popen(
        [PYTHON, "-m", "repro", "serve", "--dir", str(store_dir),
         "--socket", str(socket_path),
         "--shard-id", str(shard), "--shard-count", str(count)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO,
    )


def main() -> int:
    with tempfile.TemporaryDirectory() as scratch:
        scratch = Path(scratch)
        base_file = scratch / "world.ob"
        base_file.write_text(BASE, encoding="utf-8")
        raise_file = scratch / "raise.upd"
        raise_file.write_text(RAISE, encoding="utf-8")
        raise_bob_file = scratch / "raise_bob.upd"
        raise_bob_file.write_text(RAISE_BOB, encoding="utf-8")
        store_dir = scratch / "store"
        socket_path = scratch / "repro.sock"

        print("1. store init")
        cli("store", "init", "--dir", str(store_dir), "--base", str(base_file))

        print("2. starting repro serve")
        server = start_server(store_dir, socket_path)
        try:
            wait_for(socket_path.exists, "the server socket")
            assert cli("client", "--socket", str(socket_path), "ping").stdout.startswith("pong")

            print("3. starting a subscriber")
            subscriber = subprocess.Popen(
                [PYTHON, "-m", "repro", "client", "--socket", str(socket_path),
                 "subscribe", "E.isa -> empl, E.sal -> S",
                 "--pushes", "1", "--timeout", "30"],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                cwd=REPO,
            )
            lines: list[str] = []
            finished = threading.Event()
            threading.Thread(
                target=read_lines_background,
                args=(subscriber.stdout, lines, finished),
                daemon=True,
            ).start()
            # the initial answer set (two rows) prints before any push
            wait_for(lambda: len(lines) >= 2, "the subscriber's initial answers")
            if "S = 4000" not in lines[0] + lines[1]:
                fail(f"unexpected initial answers: {lines[:2]}")

            print("4. applying a raise; expecting one answer diff")
            cli("client", "--socket", str(socket_path), "apply",
                "--program", str(raise_file), "--tag", "smoke-raise")
            wait_for(finished.is_set, "the subscriber to receive its diff")
            if subscriber.wait(timeout=30) != 0:
                fail(f"subscriber exited {subscriber.returncode}: "
                     f"{subscriber.stderr.read()}")
            diff = json.loads(lines[-1])
            if diff["push"] != "diff" or diff["tag"] != "smoke-raise":
                fail(f"unexpected push message: {diff}")
            if diff["added"] != [{"E": "phil", "S": 4100}]:
                fail(f"unexpected answer diff: {diff['added']}")
            if diff["removed"] != [{"E": "phil", "S": 4000}]:
                fail(f"unexpected answer diff: {diff['removed']}")

            print("5. optimistic transaction with a read footprint")
            transaction = cli(
                "client", "--socket", str(socket_path), "tx",
                "--program", str(raise_bob_file),
                "--read", "bob.sal -> S", "--tag", "smoke-tx",
            )
            if "committed revision 2" not in transaction.stderr:
                fail(f"unexpected tx outcome: {transaction.stderr}")

            print("6. log and error handling")
            log = cli("client", "--socket", str(socket_path), "log").stdout
            for expected in ("initial", "smoke-raise", "smoke-tx"):
                if expected not in log:
                    fail(f"revision {expected!r} missing from log:\n{log}")
            bad = cli("client", "--socket", str(socket_path), "as-of", "nope",
                      check=False)
            if bad.returncode == 0 or "error:" not in bad.stderr:
                fail("bad revision reference did not fail cleanly")

            print("7. durability: restart replays the journal")
            server.terminate()
            server.wait(timeout=30)
            log_output = cli("store", "log", "--dir", str(store_dir)).stdout
            if "smoke-tx" not in log_output:
                fail(f"journal lost the transaction:\n{log_output}")

            print("8. crash safety: SIGKILL, verify, byte-identical replay")
            journal_file = store_dir / "journal.jsonl"
            server = start_server(store_dir, socket_path)
            # the crashed socket file may linger, so readiness is a ping
            wait_for(
                lambda: cli("client", "--socket", str(socket_path), "ping",
                            check=False).returncode == 0,
                "the restarted server",
            )
            cli("client", "--socket", str(socket_path), "apply",
                "--program", str(raise_file), "--tag", "smoke-crash")
            acknowledged = journal_file.read_bytes()
            server.kill()  # SIGKILL: no drain, no goodbye
            server.wait(timeout=30)
            if journal_file.read_bytes() != acknowledged:
                fail("SIGKILL lost or mangled acknowledged journal bytes")
            audit = cli("store", "verify", "--dir", str(store_dir))
            if "ok" not in audit.stdout:
                fail(f"journal failed verification after SIGKILL:\n"
                     f"{audit.stdout}")
            server = start_server(store_dir, socket_path)
            wait_for(
                lambda: cli("client", "--socket", str(socket_path), "ping",
                            check=False).returncode == 0,
                "the server after the crash",
            )
            log = cli("client", "--socket", str(socket_path), "log").stdout
            for expected in ("initial", "smoke-raise", "smoke-tx",
                             "smoke-crash"):
                if expected not in log:
                    fail(f"revision {expected!r} lost in the crash:\n{log}")
            server.terminate()
            server.wait(timeout=30)
            if journal_file.read_bytes() != acknowledged:
                fail("replaying after the crash rewrote the journal")

            print("9. replica failover: follower, SIGKILL, promote, takeover")
            replica_dir = scratch / "replica"
            replica_sock = scratch / "replica.sock"
            server = start_server(store_dir, socket_path)
            wait_for(
                lambda: cli("client", "--socket", str(socket_path), "ping",
                            check=False).returncode == 0,
                "the primary before replication",
            )
            replica = subprocess.Popen(
                [PYTHON, "-m", "repro", "replica", "serve",
                 "--dir", str(replica_dir),
                 "--primary", f"unix:{socket_path}",
                 "--socket", str(replica_sock),
                 "--heartbeat-interval", "0.2"],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                cwd=REPO,
            )
            try:
                wait_for(
                    lambda: cli("client", "--socket", str(replica_sock),
                                "ping", check=False).returncode == 0,
                    "the replica to bootstrap and serve",
                )
                denied = cli("client", "--socket", str(replica_sock),
                             "apply", "--program", str(raise_file),
                             check=False)
                if denied.returncode == 0:
                    fail("a replica accepted a write before promotion")

                subscriber = subprocess.Popen(
                    [PYTHON, "-m", "repro", "client",
                     "--socket", str(socket_path), "--retry", "30",
                     "subscribe", "E.isa -> empl, E.sal -> S",
                     "--pushes", "2", "--timeout", "60"],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                    cwd=REPO,
                )
                lines = []
                finished = threading.Event()
                threading.Thread(
                    target=read_lines_background,
                    args=(subscriber.stdout, lines, finished),
                    daemon=True,
                ).start()
                wait_for(lambda: len(lines) >= 2,
                         "the failover subscriber's initial answers")
                cli("client", "--socket", str(socket_path), "apply",
                    "--program", str(raise_file), "--tag", "smoke-replicated")
                wait_for(lambda: len(lines) >= 3,
                         "the pre-failover answer diff")
                replica_journal = replica_dir / "journal.jsonl"
                wait_for(
                    lambda: replica_journal.exists()
                    and replica_journal.read_bytes()
                    == journal_file.read_bytes(),
                    "the replica to catch up byte-for-byte",
                )
                acknowledged = journal_file.read_bytes()

                server.kill()  # SIGKILL: the replica's heartbeats notice
                server.wait(timeout=30)
                promote = cli("replica", "promote",
                              "--socket", str(replica_sock))
                if "promoted at epoch" not in promote.stderr:
                    fail(f"unexpected promote outcome: {promote.stderr}")

                # a write the disconnected subscriber misses: it lands on
                # the promoted replica while the old socket is still dead
                cli("client", "--socket", str(replica_sock), "apply",
                    "--program", str(raise_file), "--tag", "smoke-failover")

                # now claim the dead primary's socket; the reconnecting
                # subscriber lands on the promoted replica and catches up
                # with exactly one coalesced lagged resync
                takeover = cli("replica", "promote",
                               "--socket", str(replica_sock),
                               "--takeover", str(socket_path))
                if "taking over" not in takeover.stderr:
                    fail(f"unexpected takeover outcome: {takeover.stderr}")
                wait_for(finished.is_set,
                         "the subscriber to ride the failover",
                         timeout=60)
                if subscriber.wait(timeout=30) != 0:
                    fail(f"failover subscriber exited "
                         f"{subscriber.returncode}: "
                         f"{subscriber.stderr.read()}")
                resync = json.loads(lines[-1])
                if not resync.get("lagged"):
                    fail(f"expected one coalesced lagged resync, got: "
                         f"{resync}")
                if not resync["added"] or not resync["removed"]:
                    fail(f"the lagged resync carried no catch-up diff: "
                         f"{resync}")

                # writes resume on the dead primary's socket, now served
                # by the promoted replica at the new fencing epoch
                cli("client", "--socket", str(socket_path), "apply",
                    "--program", str(raise_file), "--tag", "smoke-resumed")
                promoted_bytes = replica_journal.read_bytes()
                if not promoted_bytes.startswith(acknowledged):
                    fail("the promoted journal is not a byte-identical "
                         "superset of the acknowledged history")
                if len(promoted_bytes) <= len(acknowledged):
                    fail("the post-failover write never reached the "
                         "promoted journal")
                audit = cli("store", "verify", "--dir", str(replica_dir))
                if "ok" not in audit.stdout or "epoch" not in audit.stdout:
                    fail(f"promoted journal failed verification:\n"
                         f"{audit.stdout}")
            finally:
                if replica.poll() is None:
                    replica.terminate()
                    replica.wait(timeout=15)

            print("10. sharded cluster: init, launch, scatter-gather reads")
            cluster_dir = scratch / "cluster"
            cluster_base = scratch / "cluster_world.ob"
            cluster_base.write_text(CLUSTER_BASE, encoding="utf-8")
            raise_henry_file = scratch / "raise_henry.upd"
            raise_henry_file.write_text(RAISE_HENRY, encoding="utf-8")
            cli("cluster", "init", "--dir", str(cluster_dir),
                "--base", str(cluster_base), "--shards", "2")
            launcher = subprocess.Popen(
                [PYTHON, "-m", "repro", "cluster", "launch",
                 "--dir", str(cluster_dir)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                cwd=REPO,
            )
            try:
                cluster_target = launcher.stdout.readline().strip()
                if not cluster_target.startswith("cluster:"):
                    fail(f"cluster launch printed no target: "
                         f"{cluster_target!r}")
                wait_for(
                    lambda: cli("client", "--target", cluster_target,
                                "ping", check=False).returncode == 0,
                    "the cluster router to answer",
                )
                # one single-host commit per shard, through the router
                cli("client", "--target", cluster_target, "apply",
                    "--program", str(raise_file), "--tag", "cluster-phil")
                cli("client", "--target", cluster_target, "apply",
                    "--program", str(raise_henry_file),
                    "--tag", "cluster-henry")
                scatter = cli("client", "--target", cluster_target, "query",
                              "E.isa -> empl, E.sal -> S").stdout
                if ("E = phil, S = 4100" not in scatter
                        or "E = henry, S = 4250" not in scatter):
                    fail(f"scatter read lost a shard's answers:\n{scatter}")
                gather = cli("client", "--target", cluster_target, "query",
                             "henry.sal -> T, phil.sal -> S").stdout
                if "S = 4100, T = 4250" not in gather:
                    fail(f"cross-shard gather join went wrong:\n{gather}")
                status = cli("cluster", "status", cluster_target).stdout
                if status.count("primary") < 2:
                    fail(f"cluster status missing shard rows:\n{status}")
            finally:
                if launcher.poll() is None:
                    launcher.terminate()
                    launcher.wait(timeout=30)

            print("11. shard failover behind the cluster router")
            shard0_sock = scratch / "c0.sock"
            shard1_sock = scratch / "c1.sock"
            shard0 = start_shard(cluster_dir / "shard-0", shard0_sock, 0, 2)
            shard1 = start_shard(cluster_dir / "shard-1", shard1_sock, 1, 2)
            shard0_replica_dir = scratch / "shard0-replica"
            shard0_replica_sock = scratch / "c0r.sock"
            shard0_replica = subprocess.Popen(
                [PYTHON, "-m", "repro", "replica", "serve",
                 "--dir", str(shard0_replica_dir),
                 "--primary", f"unix:{shard0_sock}",
                 "--socket", str(shard0_replica_sock),
                 "--heartbeat-interval", "0.2"],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                cwd=REPO,
            )
            try:
                failover_target = (
                    f"cluster:unix:{shard0_sock}|unix:{shard0_replica_sock},"
                    f"unix:{shard1_sock}"
                )
                wait_for(
                    lambda: cli("client", "--socket", str(shard1_sock),
                                "ping", check=False).returncode == 0,
                    "shard 1 to serve",
                )
                shard0_journal = cluster_dir / "shard-0" / "journal.jsonl"
                replica_journal = shard0_replica_dir / "journal.jsonl"
                wait_for(
                    lambda: replica_journal.exists()
                    and replica_journal.read_bytes()
                    == shard0_journal.read_bytes(),
                    "the shard-0 replica to catch up byte-for-byte",
                )
                # the router accepts the primary|replica shard spelling
                cli("client", "--target", failover_target, "apply",
                    "--program", str(raise_file), "--tag", "cluster-phil-2")

                shard0.kill()  # SIGKILL shard 0's primary: no goodbye
                shard0.wait(timeout=30)
                promote = cli("replica", "promote",
                              "--socket", str(shard0_replica_sock))
                if "promoted at epoch" not in promote.stderr:
                    fail(f"shard-0 promote went wrong: {promote.stderr}")

                # writes and scatter reads keep working through the router
                cli("client", "--target", failover_target, "apply",
                    "--program", str(raise_henry_file),
                    "--tag", "cluster-failover")
                scatter = cli("client", "--target", failover_target, "query",
                              "E.isa -> empl, E.sal -> S").stdout
                if ("E = phil, S = 4200" not in scatter
                        or "E = henry, S = 4300" not in scatter):
                    fail(f"post-failover scatter answers are wrong:\n"
                         f"{scatter}")
                status = cli("cluster", "status", failover_target).stdout
                if "primary" not in status:
                    fail(f"post-failover cluster status went wrong:\n"
                         f"{status}")
            finally:
                for process in (shard0, shard1, shard0_replica):
                    if process.poll() is None:
                        process.terminate()
                for process in (shard0, shard1, shard0_replica):
                    try:
                        process.wait(timeout=15)
                    except subprocess.TimeoutExpired:
                        process.kill()
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=10)

    print("server smoke test OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
