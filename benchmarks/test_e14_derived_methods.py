"""E14 — Section 6 generalisation: derived methods ("derived objects").

Paper expectation: "we did not consider derived objects ... We do not see
any principal problems to generalize our approach in this direction."
The generalisation implemented in :mod:`repro.ext.derived` keeps derived
methods as views — recomputed before every T_P application, never stored,
never copied.
Measured: (a) the live-view engine against a baseline that materialises
the view once into stored facts (the stale-copy design the view semantics
avoids); (b) the cost of view recomputation as base size grows; (c) the
correctness anchor: between-strata updates see fresh view states.
"""

import pytest

from repro import UpdateEngine, query
from repro.ext.derived import DerivedUpdateEngine, materialize, parse_derived_program
from repro.lang.parser import parse_program
from repro.workloads import enterprise_base

VIEWS = parse_derived_program(
    "senior: ?W.senior -> yes <= ?W.sal -> S, S > 4000."
)

CUT = parse_program(
    """
    cut:   mod[E].sal -> (S, S2) <= E.senior -> yes, E.sal -> S,
           S2 = S - 500.
    check: ins[mod(E)].still_senior -> yes <= mod(E).senior -> yes.
    """
)


@pytest.mark.parametrize("n_employees", [25, 100])
def test_e14_live_view_engine(benchmark, n_employees):
    base = enterprise_base(n_employees=n_employees, seed=14)
    engine = DerivedUpdateEngine(VIEWS)

    result = benchmark(lambda: engine.apply(CUT, base))

    # correctness anchor: `check` runs after `cut` and must see the view
    # over the *reduced* salaries — only those above 4500 pre-cut remain
    before = {a["E"]: a["S"] for a in query(base, "E.sal -> S")}
    still = {a["E"] for a in query(result.new_base, "E.still_senior -> yes")}
    expected = {name for name, sal in before.items() if sal - 500 > 4000 and sal > 4000}
    assert still == expected


@pytest.mark.parametrize("n_employees", [25, 100])
def test_e14_stale_copy_baseline(benchmark, n_employees):
    """The ablation: materialise the view once into stored facts and run
    the plain engine — faster, but the `check` stratum then reads *stale*
    senior flags (copied along by the frame rule)."""
    base = enterprise_base(n_employees=n_employees, seed=14)
    plain = UpdateEngine()

    def stale_run():
        frozen = materialize(base, VIEWS)
        return plain.apply(CUT, frozen)

    result = benchmark(stale_run)

    before = {a["E"]: a["S"] for a in query(base, "E.sal -> S")}
    still = {a["E"] for a in query(result.new_base, "E.still_senior -> yes")}
    stale = {name for name, sal in before.items() if sal > 4000}
    assert still == stale  # everyone pre-cut senior — including wrong ones


@pytest.mark.parametrize("n_employees", [50, 200, 800])
def test_e14_materialisation_cost(benchmark, n_employees):
    base = enterprise_base(n_employees=n_employees, seed=14)
    enriched = benchmark(lambda: materialize(base, VIEWS))
    assert enriched.facts_by_method("senior", 0)
