"""P1 (added) — end-to-end scaling of the update engine.

The paper makes no performance claims; this sweep documents the
reproduction's own behaviour: apply() cost versus base size for the full
enterprise program (three strata, all three update kinds), and versus the
number of rules at fixed base size.
"""

import pytest

from repro import query
from repro.lang.parser import parse_program
from repro.workloads import enterprise_base, enterprise_update_program


@pytest.mark.parametrize("n_employees", [25, 100, 400])
def test_p1_base_size_sweep(benchmark, engine, n_employees):
    base = enterprise_base(n_employees=n_employees, overpaid_ratio=0.1, seed=21)
    program = enterprise_update_program(hpe_threshold=4000)

    result = benchmark(lambda: engine.apply(program, base))
    assert len(result.new_base) > 0


@pytest.mark.parametrize("n_rules", [2, 8, 32])
def test_p1_rule_count_sweep(benchmark, engine, n_rules):
    """Independent single-stratum insert rules at fixed base size."""
    base = enterprise_base(n_employees=100, seed=21)
    lines = [
        f"r{i}: ins[E].tag{i} -> yes <= E.isa -> empl, E.sal -> S, S > {1000 + i}."
        for i in range(n_rules)
    ]
    program = parse_program("\n".join(lines))

    result = benchmark(lambda: engine.apply(program, base))
    assert query(result.new_base, "E.tag0 -> yes")
