#!/usr/bin/env python3
"""Run the P1 scaling sweep and write BENCH_PR1.json.

Equivalent to ``python -m repro bench``; kept next to the pytest benchmarks
so the perf entry point is easy to find::

    PYTHONPATH=src python benchmarks/run_bench.py [--out BENCH_PR1.json]
"""

import sys

from repro.bench.sweep import main

if __name__ == "__main__":
    sys.exit(main())
