"""Benchmark suite: one module per experiment of DESIGN.md §5.

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark asserts
the paper-derived *shape* of its result (who wins, what is produced) in
addition to timing; EXPERIMENTS.md records paper-vs-measured per entry.
"""
