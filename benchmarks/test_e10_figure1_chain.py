"""E10 — Figure 1: k consecutive groups of basic updates.

Paper expectation (Figure 1 + Section 2.2): performing k groups of updates
of types α_1 ... α_k on an object o materialises the chain
α_k(...α_1(o)...); the final version is taken over into ob'.
Measured: evaluation time versus chain depth k — one stratum per group, so
cost grows roughly linearly in k at fixed base size.
"""

import pytest

from repro import UpdateEngine
from repro.core.terms import depth, object_of
from repro.workloads.synthetic import random_object_base, version_chain_program


@pytest.mark.parametrize("k", [1, 4, 8, 16])
def test_e10_chain_depth(benchmark, engine, k):
    base = random_object_base(n_objects=5, seed=10)
    program = version_chain_program(k)

    result = benchmark(lambda: engine.apply(program, base))

    for owner, final in result.final_versions.items():
        assert object_of(final) == owner
        assert depth(final) == k
    # the final version's state survived into ob'
    for obj in base.objects():
        tags = result.new_base.facts_by_host_method(obj, "tag", 0)
        assert len(tags) == 1  # the undeletable counter is still there


def test_e10_strata_equal_groups(engine):
    """One stratum per update group — the Figure 1 timeline, literally."""
    base = random_object_base(n_objects=2, seed=10)
    for k in (3, 7, 11):
        outcome = engine.evaluate(version_chain_program(k), base)
        assert len(outcome.stratification) == k
