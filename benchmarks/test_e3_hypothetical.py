"""E3 — Section 2.3 example 2: hypothetical reasoning via versions.

Paper expectation: the what-if raise is performed on mod(e) and revised on
mod(mod(e)) ("for each employee e the mod(mod(e))-version is identical to
the e-version"); rules 3/4 judge richness on the intermediate version;
footnote 3's stratification is {r1} < {r2} < {r3} < {r4}.
Measured: the full what-if pipeline over growing employee counts.
"""

import random

import pytest

from repro import parse_object_base, query
from repro.workloads import hypothetical_base, hypothetical_program


def _scaled_base(n_employees: int, seed: int = 0):
    rng = random.Random(seed)
    lines = ["peter.isa -> empl.  peter.sal -> 100.  peter.factor -> 3."]
    for i in range(n_employees - 1):
        lines.append(
            f"e{i}.isa -> empl. e{i}.sal -> {rng.randint(50, 120)}. "
            f"e{i}.factor -> {rng.choice([1, 2])}."
        )
    return parse_object_base("\n".join(lines))


def test_e3_paper_scenario(benchmark, engine):
    base = hypothetical_base()
    program = hypothetical_program()

    result = benchmark(lambda: engine.apply(program, base))

    assert result.stratification.names() == [
        ["rule1"], ["rule2"], ["rule3"], ["rule4"],
    ]
    assert query(result.new_base, "peter.richest -> V") == [{"V": "yes"}]
    # the hypothetical raise left no trace on the final salaries
    assert {a["S"] for a in query(result.new_base, "peter.sal -> S")} == {100}


@pytest.mark.parametrize("n_employees", [10, 50])
def test_e3_scaled(benchmark, engine, n_employees):
    base = _scaled_base(n_employees)
    program = hypothetical_program()

    result = benchmark(lambda: engine.apply(program, base))

    # peter's factor 3 on salary 100 beats everyone's max 120 * 2
    assert query(result.new_base, "peter.richest -> V") == [{"V": "yes"}]
    # every employee's salary is reverted to the original
    outcome_salaries = {
        a["E"]: a["S"] for a in query(result.new_base, "E.sal -> S")
    }
    original_salaries = {a["E"]: a["S"] for a in query(base, "E.sal -> S")}
    assert outcome_salaries == original_salaries


def test_e3_revision_identity(engine):
    """mod(mod(e)) state == e state, per the paper's exact phrasing."""
    outcome = engine.evaluate(hypothetical_program(), hypothetical_base())
    for person in ("peter", "anna"):
        original = query(outcome.result_base, f"{person}.sal -> S")
        reverted = query(outcome.result_base, f"mod(mod({person})).sal -> S")
        assert original == reverted
