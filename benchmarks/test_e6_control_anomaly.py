"""E6 — Section 2.4: update = logic + control.

Paper expectation: on the bob-at-$4100 variant, "without imposing control
by the structure of the VIDs, firing employees before raising salaries
could have led to a different unintended updated object-base."  The
versioned engine keeps bob (post-raise he earns less than his boss); the
single-time-step semantics fires him against the original salaries and
misses the hpe classification.
Measured: both semantics on the literal variant and on scaled enterprises;
the assertion block pins the divergence.
"""

import pytest

from repro import query
from repro.baselines import naive_one_step_update
from repro.workloads import (
    enterprise_base,
    enterprise_update_program,
    paper_example_base,
    paper_example_program,
)


def test_e6_versioned_semantics(benchmark, engine):
    base = paper_example_base(bob_salary=4100)
    program = paper_example_program()

    result = benchmark(lambda: engine.apply(program, base))

    employees = {a["E"] for a in query(result.new_base, "E.isa -> empl")}
    hpe = {a["E"] for a in query(result.new_base, "E.isa -> hpe")}
    assert employees == {"phil", "bob"}   # nobody fired
    assert hpe == {"phil", "bob"}         # both high-paid after the raise


def test_e6_naive_semantics(benchmark):
    base = paper_example_base(bob_salary=4100)
    program = paper_example_program()

    result = benchmark(lambda: naive_one_step_update(program, base))

    employees = {a["E"] for a in query(result.new_base, "E.isa -> empl")}
    assert employees == {"phil"}                       # bob wrongly fired
    assert query(result.new_base, "E.isa -> hpe") == []  # hpe missed


@pytest.mark.parametrize("n_employees", [25, 100])
def test_e6_divergence_scales(benchmark, engine, n_employees):
    """The two semantics keep diverging on generated enterprises."""
    base = enterprise_base(n_employees=n_employees, overpaid_ratio=0.3, seed=6)
    program = enterprise_update_program(hpe_threshold=4000)

    def both():
        versioned = engine.apply(program, base).new_base
        naive = naive_one_step_update(program, base).new_base
        return versioned, naive

    versioned, naive = benchmark(both)
    versioned_employees = {a["E"] for a in query(versioned, "E.isa -> empl")}
    naive_employees = {a["E"] for a in query(naive, "E.isa -> empl")}
    # one-step semantics fires against pre-raise salaries: strictly more
    # (or at least different) firings than the intended semantics
    assert naive_employees != versioned_employees
    assert len(naive_employees) <= len(versioned_employees)
