#!/usr/bin/env python3
"""Bench-regression guard: compare a fresh sweep against the committed
baseline.

Absolute wall times are not portable across CI machines, so the guard
compares **ratios** (speedup factors measured within one process on one
machine) and enforces two kinds of bound:

* hard floors from the acceptance criteria — the memoized serving path
  must stay >= 3x over per-call reads, and the concurrent push-serving
  path >= 3x over naive per-request re-evaluation;
* relative bounds — each tracked ratio must reach at least
  ``(1 - tolerance)`` of the committed baseline's value.

Exit status 0 when everything holds, 1 with a per-check report otherwise.

Usage (what CI runs)::

    python benchmarks/check_regression.py \
        --baseline BENCH_PR3.json --fresh bench-queries-ci.json \
        --p1-baseline BENCH_PR1.json --p1-fresh bench-ci.json \
        --serve-baseline BENCH_PR4.json --serve-fresh bench-serve-ci.json \
        --joins-baseline BENCH_PR7.json --joins-fresh bench-joins-ci.json

The chaos job runs the soak checks on their own — correctness
invariants are absolute, throughput is a ratio::

    python benchmarks/check_regression.py \
        --soak-baseline BENCH_PR6.json --soak-fresh bench-soak-ci.json

and likewise the replication checks (PR 8): zero lost acknowledged
commits and a consistent post-failover subscription are absolute,
catch-up time has an absolute ceiling, and replica read fanout is a
throughput ratio against the committed baseline::

    python benchmarks/check_regression.py \
        --replication-baseline BENCH_PR8.json \
        --replication-fresh bench-replication-ci.json

The cluster guard (PR 10) enforces the sharding acceptance criteria:
consistency against the memory replay is absolute, read scaling at the
largest shard count has a hard >= 3x floor (plus a ratio bound against
the committed baseline), and single-shard commits routed through the
cluster must keep >= 0.9x of standalone throughput::

    python benchmarks/check_regression.py \
        --cluster-baseline BENCH_PR10.json \
        --cluster-fresh bench-cluster-ci.json

The observability guard (PR 9) enforces the metrics-overhead acceptance
bound as absolute ceilings measured within one process (both runs of
each pair happen on the same machine, so no cross-machine noise): with
the registry enabled, the P1[400] apply must stay within 5 % of the
disabled time and the serve run within 5 % of the disabled throughput::

    python benchmarks/check_regression.py \
        --obs-baseline BENCH_PR9.json --obs-fresh bench-obs-ci.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: The acceptance-criteria floor for the memoized serving path.
SERVED_SPEEDUP_FLOOR = 3.0

#: The acceptance-criteria floor for concurrent push serving (PR 4).
SERVE_THROUGHPUT_FLOOR = 3.0

#: The acceptance-criteria floor for compiled join execution (PR 7): the
#: codegen'd path must stay >= 1.5x over the interpreted planned walker on
#: the largest P1 base of the sweep.
COMPILED_SPEEDUP_FLOOR = 1.5

#: Replication (PR 8): followers must absorb the burst within this many
#: seconds — an absolute ceiling, generous because CI machines are noisy
#: (the committed baseline is well under a second).
REPLICATION_CATCHUP_CEILING_S = 15.0

#: Replication (PR 8): aggregate replica reads/s must stay above this
#: floor — three followers serving essentially nothing means the fanout
#: path is broken, whatever the machine.
REPLICA_READS_FLOOR = 50.0

#: Observability (PR 9): with the metrics registry enabled, the P1[400]
#: apply may take at most this multiple of the disabled time (the 5 %
#: acceptance bound; both runs happen in one process on one machine).
OBS_P1_OVERHEAD_CEILING = 1.05

#: Observability (PR 9): with the metrics registry enabled, the serve
#: run must keep at least this fraction of the disabled throughput.
OBS_SERVE_THROUGHPUT_FLOOR = 0.95

#: Cluster (PR 10): aggregate read throughput at the largest shard count
#: of the sweep (8 by default) must stay >= 3x over one shard — the
#: acceptance-criteria scaling floor.  Both halves of the ratio come from
#: one process on one machine, so machine noise cancels.
CLUSTER_READ_SCALING_FLOOR = 3.0

#: Cluster (PR 10): commits routed through a 1-shard cluster must keep at
#: least this fraction of standalone-server commit throughput (the
#: "router costs < 10 %" acceptance bound).
CLUSTER_COMMIT_RATIO_FLOOR = 0.9


def check_ratio(
    failures: list[str], name: str, fresh: float, baseline: float, tolerance: float
) -> None:
    bound = baseline * (1.0 - tolerance)
    verdict = "ok" if fresh >= bound else "REGRESSION"
    print(
        f"{name:<45} fresh {fresh:7.2f}x  baseline {baseline:7.2f}x  "
        f"(bound {bound:5.2f}x)  {verdict}"
    )
    if fresh < bound:
        failures.append(name)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_PR3.json (optional)")
    parser.add_argument("--fresh", type=Path, default=None,
                        help="query sweep produced by this run (optional)")
    parser.add_argument("--p1-baseline", type=Path, default=None,
                        help="committed BENCH_PR1.json (optional)")
    parser.add_argument("--p1-fresh", type=Path, default=None,
                        help="P1 sweep produced by this run (optional)")
    parser.add_argument("--serve-baseline", type=Path, default=None,
                        help="committed BENCH_PR4.json (optional)")
    parser.add_argument("--serve-fresh", type=Path, default=None,
                        help="serve sweep produced by this run (optional)")
    parser.add_argument("--joins-baseline", type=Path, default=None,
                        help="committed BENCH_PR7.json (optional)")
    parser.add_argument("--joins-fresh", type=Path, default=None,
                        help="joins sweep produced by this run (optional)")
    parser.add_argument("--soak-baseline", type=Path, default=None,
                        help="committed BENCH_PR6.json (optional)")
    parser.add_argument("--soak-fresh", type=Path, default=None,
                        help="soak run produced by this CI job (optional)")
    parser.add_argument("--replication-baseline", type=Path, default=None,
                        help="committed BENCH_PR8.json (optional)")
    parser.add_argument("--replication-fresh", type=Path, default=None,
                        help="replication run produced by this CI job "
                        "(optional)")
    parser.add_argument("--cluster-baseline", type=Path, default=None,
                        help="committed BENCH_PR10.json (optional)")
    parser.add_argument("--cluster-fresh", type=Path, default=None,
                        help="cluster sweep produced by this run (optional)")
    parser.add_argument("--obs-baseline", type=Path, default=None,
                        help="committed BENCH_PR9.json (optional)")
    parser.add_argument("--obs-fresh", type=Path, default=None,
                        help="observability sweep produced by this run "
                        "(optional)")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed relative shortfall vs the baseline "
                        "ratio (default: %(default)s — CI machines are noisy)")
    arguments = parser.parse_args(argv)

    failures: list[str] = []

    if arguments.baseline and arguments.fresh:
        baseline = json.loads(arguments.baseline.read_text(encoding="utf-8"))
        fresh = json.loads(arguments.fresh.read_text(encoding="utf-8"))
        served = fresh["speedup_served_over_per_call"]
        verdict = "ok" if served >= SERVED_SPEEDUP_FLOOR else "REGRESSION"
        print(
            f"{'served speedup floor':<45} fresh {served:7.2f}x  "
            f"floor {SERVED_SPEEDUP_FLOOR:.2f}x{'':>21}{verdict}"
        )
        if served < SERVED_SPEEDUP_FLOOR:
            failures.append("served speedup floor")
        check_ratio(
            failures, "served over per-call",
            served, baseline["speedup_served_over_per_call"],
            arguments.tolerance,
        )
        for name, entry in baseline["per_query_head"].items():
            fresh_entry = fresh["per_query_head"].get(name)
            if fresh_entry is None:
                print(
                    f"{name:<45} missing from fresh sweep            "
                    "REGRESSION"
                )
                failures.append(name)
                continue
            check_ratio(
                failures, f"indexed over dynamic [{name}]",
                fresh_entry["speedup_indexed_over_dynamic"],
                entry["speedup_indexed_over_dynamic"],
                arguments.tolerance,
            )

    if arguments.serve_baseline and arguments.serve_fresh:
        serve_baseline = json.loads(
            arguments.serve_baseline.read_text(encoding="utf-8")
        )
        serve_fresh = json.loads(
            arguments.serve_fresh.read_text(encoding="utf-8")
        )
        serve_ratio = serve_fresh["throughput_ratio_served_over_naive"]
        verdict = "ok" if serve_ratio >= SERVE_THROUGHPUT_FLOOR else "REGRESSION"
        print(
            f"{'serve throughput floor':<45} fresh {serve_ratio:7.2f}x  "
            f"floor {SERVE_THROUGHPUT_FLOOR:.2f}x{'':>21}{verdict}"
        )
        if serve_ratio < SERVE_THROUGHPUT_FLOOR:
            failures.append("serve throughput floor")
        check_ratio(
            failures, "serve throughput served over naive",
            serve_ratio,
            serve_baseline["throughput_ratio_served_over_naive"],
            arguments.tolerance,
        )

    if arguments.joins_baseline and arguments.joins_fresh:
        joins_baseline = json.loads(
            arguments.joins_baseline.read_text(encoding="utf-8")
        )
        joins_fresh = json.loads(
            arguments.joins_fresh.read_text(encoding="utf-8")
        )
        fresh_speedups = joins_fresh["p1"]["speedup_compiled_over_interpreted"]
        largest = str(max(int(size) for size in fresh_speedups))
        floor_speedup = fresh_speedups[largest]
        verdict = (
            "ok" if floor_speedup >= COMPILED_SPEEDUP_FLOOR else "REGRESSION"
        )
        print(
            f"{f'compiled speedup floor [n={largest}]':<45} "
            f"fresh {floor_speedup:7.2f}x  "
            f"floor {COMPILED_SPEEDUP_FLOOR:.2f}x{'':>21}{verdict}"
        )
        if floor_speedup < COMPILED_SPEEDUP_FLOOR:
            failures.append("compiled speedup floor")
        baseline_speedups = joins_baseline["p1"][
            "speedup_compiled_over_interpreted"
        ]
        for size, ratio in baseline_speedups.items():
            fresh_ratio = fresh_speedups.get(size)
            if fresh_ratio is None:
                continue  # the fresh run swept different sizes
            check_ratio(
                failures, f"compiled over interpreted [n={size}]",
                fresh_ratio, ratio, arguments.tolerance,
            )
        check_ratio(
            failures, "compiled over interpreted [wide join]",
            joins_fresh["wide_join"]["speedup_compiled_over_interpreted"],
            joins_baseline["wide_join"]["speedup_compiled_over_interpreted"],
            arguments.tolerance,
        )

    if arguments.soak_baseline and arguments.soak_fresh:
        soak_baseline = json.loads(
            arguments.soak_baseline.read_text(encoding="utf-8")
        )
        soak_fresh = json.loads(
            arguments.soak_fresh.read_text(encoding="utf-8")
        )
        # correctness invariants are absolute: any breach is a regression
        for invariant, want in (
            ("consistent", True),
            ("journal_ok", True),
            ("non_retryable_errors", 0),
        ):
            got = soak_fresh.get(invariant)
            verdict = "ok" if got == want else "REGRESSION"
            print(
                f"{f'soak {invariant}':<45} fresh {got!r:>8}  "
                f"required {want!r}{'':>14}{verdict}"
            )
            if got != want:
                failures.append(f"soak {invariant}")
        check_ratio(
            failures, "soak commit throughput (commits/s)",
            soak_fresh["commits_per_second"],
            soak_baseline["commits_per_second"],
            arguments.tolerance,
        )

    if arguments.replication_baseline and arguments.replication_fresh:
        repl_baseline = json.loads(
            arguments.replication_baseline.read_text(encoding="utf-8")
        )
        repl_fresh = json.loads(
            arguments.replication_fresh.read_text(encoding="utf-8")
        )
        # correctness invariants are absolute: any breach is a regression
        for invariant, want in (
            ("lost_acknowledged_commits", 0),
            ("consistent", True),
            ("journal_ok", True),
        ):
            got = repl_fresh.get(invariant)
            verdict = "ok" if got == want else "REGRESSION"
            print(
                f"{f'replication {invariant}':<45} fresh {got!r:>8}  "
                f"required {want!r}{'':>14}{verdict}"
            )
            if got != want:
                failures.append(f"replication {invariant}")
        catchup = repl_fresh["replication_catchup_seconds"]
        verdict = (
            "ok" if catchup <= REPLICATION_CATCHUP_CEILING_S else "REGRESSION"
        )
        print(
            f"{'replication catch-up ceiling (s)':<45} "
            f"fresh {catchup:7.2f}   "
            f"ceiling {REPLICATION_CATCHUP_CEILING_S:.2f}{'':>16}{verdict}"
        )
        if catchup > REPLICATION_CATCHUP_CEILING_S:
            failures.append("replication catch-up ceiling")
        fanout = repl_fresh["replica_reads_per_second"]
        verdict = "ok" if fanout >= REPLICA_READS_FLOOR else "REGRESSION"
        print(
            f"{'replica read fanout floor (reads/s)':<45} "
            f"fresh {fanout:7.0f}   "
            f"floor {REPLICA_READS_FLOOR:.0f}{'':>19}{verdict}"
        )
        if fanout < REPLICA_READS_FLOOR:
            failures.append("replica read fanout floor")
        check_ratio(
            failures, "replica read fanout (reads/s)",
            fanout, repl_baseline["replica_reads_per_second"],
            arguments.tolerance,
        )

    if arguments.cluster_baseline and arguments.cluster_fresh:
        cluster_baseline = json.loads(
            arguments.cluster_baseline.read_text(encoding="utf-8")
        )
        cluster_fresh = json.loads(
            arguments.cluster_fresh.read_text(encoding="utf-8")
        )
        # the scatter answers must match the memory replay at every count
        got = cluster_fresh.get("consistent")
        verdict = "ok" if got is True else "REGRESSION"
        print(
            f"{'cluster consistent':<45} fresh {got!r:>8}  "
            f"required True{'':>14}{verdict}"
        )
        if got is not True:
            failures.append("cluster consistent")
        scaling = cluster_fresh["read_scaling_largest_over_one"]
        shards = cluster_fresh["read_scaling_shards"]
        verdict = (
            "ok" if scaling >= CLUSTER_READ_SCALING_FLOOR else "REGRESSION"
        )
        print(
            f"{f'cluster read scaling floor [{shards} shards]':<45} "
            f"fresh {scaling:7.2f}x  "
            f"floor {CLUSTER_READ_SCALING_FLOOR:.2f}x{'':>21}{verdict}"
        )
        if scaling < CLUSTER_READ_SCALING_FLOOR:
            failures.append("cluster read scaling floor")
        commit_ratio = cluster_fresh[
            "commit_throughput_ratio_routed_over_standalone"
        ]
        verdict = (
            "ok" if commit_ratio >= CLUSTER_COMMIT_RATIO_FLOOR
            else "REGRESSION"
        )
        print(
            f"{'cluster single-shard commit ratio floor':<45} "
            f"fresh {commit_ratio:7.3f}   "
            f"floor {CLUSTER_COMMIT_RATIO_FLOOR:.2f}{'':>19}{verdict}"
        )
        if commit_ratio < CLUSTER_COMMIT_RATIO_FLOOR:
            failures.append("cluster single-shard commit ratio floor")
        check_ratio(
            failures, "cluster read scaling vs baseline",
            scaling,
            cluster_baseline["read_scaling_largest_over_one"],
            arguments.tolerance,
        )

    if arguments.obs_baseline and arguments.obs_fresh:
        obs_baseline = json.loads(
            arguments.obs_baseline.read_text(encoding="utf-8")
        )
        obs_fresh = json.loads(
            arguments.obs_fresh.read_text(encoding="utf-8")
        )
        # the acceptance bounds are absolute: both halves of each ratio
        # come from the same process, so machine noise cancels
        p1_ratio = obs_fresh["p1_overhead_ratio_on_over_off"]
        verdict = "ok" if p1_ratio <= OBS_P1_OVERHEAD_CEILING else "REGRESSION"
        print(
            f"{'obs P1 overhead ceiling (on/off time)':<45} "
            f"fresh {p1_ratio:7.3f}   "
            f"ceiling {OBS_P1_OVERHEAD_CEILING:.2f}{'':>17}{verdict}"
        )
        if p1_ratio > OBS_P1_OVERHEAD_CEILING:
            failures.append("obs P1 overhead ceiling")
        serve_ratio = obs_fresh["serve_throughput_ratio_on_over_off"]
        verdict = (
            "ok" if serve_ratio >= OBS_SERVE_THROUGHPUT_FLOOR else "REGRESSION"
        )
        print(
            f"{'obs serve throughput floor (on/off)':<45} "
            f"fresh {serve_ratio:7.3f}   "
            f"floor {OBS_SERVE_THROUGHPUT_FLOOR:.2f}{'':>19}{verdict}"
        )
        if serve_ratio < OBS_SERVE_THROUGHPUT_FLOOR:
            failures.append("obs serve throughput floor")
        check_ratio(
            failures, "obs serve throughput vs baseline",
            serve_ratio,
            obs_baseline["serve_throughput_ratio_on_over_off"],
            arguments.tolerance,
        )

    if arguments.p1_baseline and arguments.p1_fresh:
        p1_baseline = json.loads(arguments.p1_baseline.read_text(encoding="utf-8"))
        p1_fresh = json.loads(arguments.p1_fresh.read_text(encoding="utf-8"))
        for size, ratio in p1_baseline["speedup_naive_over_semi_naive"].items():
            fresh_ratio = p1_fresh["speedup_naive_over_semi_naive"].get(size)
            if fresh_ratio is None:
                continue  # the fresh run swept different sizes
            check_ratio(
                failures, f"P1 semi-naive speedup [n={size}]",
                fresh_ratio, ratio, arguments.tolerance,
            )

    if failures:
        print(f"\n{len(failures)} bench regression(s): {', '.join(failures)}")
        return 1
    print("\nall bench ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
