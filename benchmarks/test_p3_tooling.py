"""P3 (added) — analysis tooling costs.

The lint pass (repro.analysis), the schema-evolution report
(repro.ext.schema) and the Figure-1 chain renderer are development-loop
tools; they must stay cheap relative to evaluation.
"""

import pytest

from repro import UpdateEngine
from repro.analysis import lint_program
from repro.core.trace import render_version_chains
from repro.ext.schema import class_signatures, schema_delta
from repro.workloads import (
    enterprise_base,
    paper_example_program,
)
from repro.workloads.synthetic import version_chain_program


def test_p3_lint_paper_program(benchmark):
    program = paper_example_program()
    findings = benchmark(lambda: lint_program(program))
    assert findings == []


@pytest.mark.parametrize("k", [8, 16])
def test_p3_lint_chain_program(benchmark, k):
    program = version_chain_program(k)
    findings = benchmark(lambda: lint_program(program))
    assert all(f.code != "L001" for f in findings)


@pytest.mark.parametrize("n_employees", [100, 400])
def test_p3_class_signatures(benchmark, n_employees):
    base = enterprise_base(n_employees=n_employees, seed=31)
    signatures = benchmark(lambda: class_signatures(base))
    from repro.core.terms import Oid

    assert signatures[Oid("empl")].mandatory >= {("sal", 0)}


def test_p3_schema_delta_figure2(benchmark, engine):
    from repro.workloads import paper_example_base

    base = paper_example_base()
    new_base = engine.apply(paper_example_program(), base).new_base
    delta = benchmark(lambda: schema_delta(base, new_base))
    assert not delta.is_empty()


def test_p3_chain_rendering(benchmark, engine):
    from repro.workloads.synthetic import random_object_base

    base = random_object_base(n_objects=20, seed=31)
    outcome = engine.evaluate(version_chain_program(6), base)
    text = benchmark(lambda: render_version_chains(outcome.result_base))
    assert "=>" in text
