"""E4 — Section 2.3 example 3: recursive updates (ancestors).

Paper expectation: the two recursive ins-rules form a single stratum and
compute the set-valued anc method — the transitive closure of parents.
Measured: evaluation time against generation depth and fanout; every answer
is verified against an independent graph traversal.
"""

import pytest

from repro import query
from repro.workloads import ancestors_program, genealogy_base, true_ancestors


@pytest.mark.parametrize(
    "generations,per_generation",
    [(3, 6), (5, 6), (7, 6), (5, 12)],
    ids=["shallow", "medium", "deep", "wide"],
)
def test_e4_ancestors(benchmark, engine, generations, per_generation):
    base = genealogy_base(
        generations=generations, per_generation=per_generation, seed=4
    )
    program = ancestors_program()

    result = benchmark(lambda: engine.apply(program, base))

    assert len(result.stratification) == 1  # single recursive stratum
    truth = true_ancestors(base)
    computed: dict[str, set[str]] = {person: set() for person in truth}
    for answer in query(result.new_base, "X.anc -> P"):
        computed[str(answer["X"])].add(str(answer["P"]))
    assert computed == truth


def test_e4_iterations_track_depth(engine):
    """Fixpoint rounds grow with ancestry depth, not with base size."""
    shallow = engine.evaluate(
        ancestors_program(), genealogy_base(generations=3, per_generation=10, seed=5)
    )
    deep = engine.evaluate(
        ancestors_program(), genealogy_base(generations=8, per_generation=3, seed=5)
    )
    assert deep.iterations > shallow.iterations
