"""E8 — Section 3, footnote 4: the frame problem and lazy state copying.

Paper expectation: "By copying old states only for the objects being
updated (and not the whole object-base), we keep the unavoidable overhead
low."  The copy count must therefore track the number of *updated*
objects, not the base size, and evaluation cost at a fixed update count
should grow only mildly with base size (index lookups), while an
eager-copy strategy would scale with the whole base.
Measured: (a) copies and time with the touched fraction swept at fixed
base size, (b) time with base size swept at a fixed number of touched
objects, (c) the simulated eager-copy baseline for contrast.
"""

import pytest

from repro import UpdateEngine
from repro.core.consequence import tp_step
from repro.core.facts import Fact
from repro.lang.parser import parse_program
from repro.workloads.synthetic import random_object_base


def _touch_program(n_touched: int):
    """A program inserting one tag on each of the first n objects."""
    lines = [
        f"t{i}: ins[o{i}].tag -> yes <= o{i}.exists -> o{i}."
        for i in range(n_touched)
    ]
    return parse_program("\n".join(lines))


@pytest.mark.parametrize("touched", [1, 10, 50])
def test_e8_copies_track_touched_objects(benchmark, touched):
    engine = UpdateEngine(collect_trace=True)
    base = random_object_base(n_objects=100, facts_per_object=4, seed=8)
    program = _touch_program(touched)

    outcome = benchmark(lambda: engine.evaluate(program, base))
    # the frame rule copied exactly the touched objects — footnote 4
    assert outcome.trace.total_copies == touched


@pytest.mark.parametrize("n_objects", [50, 200, 800])
def test_e8_fixed_updates_scaling_base(benchmark, n_objects):
    """10 touched objects; base size swept.  Lazy copying keeps the copy
    work constant (10), so cost grows far slower than base size."""
    engine = UpdateEngine(collect_trace=True)
    base = random_object_base(n_objects=n_objects, facts_per_object=4, seed=8)
    program = _touch_program(10)

    outcome = benchmark(lambda: engine.evaluate(program, base))
    assert outcome.trace.total_copies == 10


@pytest.mark.parametrize("n_objects", [50, 200, 800])
def test_e8_eager_copy_baseline(benchmark, n_objects):
    """The ablation contrast: copy the *whole base* once per T_P round —
    what a versioning scheme without lazy copies would pay."""
    base = random_object_base(n_objects=n_objects, facts_per_object=4, seed=8)
    program = list(_touch_program(10))

    def eager_round():
        # the lazy step itself ...
        step = tp_step(program, base)
        # ... plus the eager full-base copy the paper's design avoids
        copied = {Fact(f.host, f.method, f.args, f.result) for f in base}
        return len(copied) + len(step.new_states)

    assert benchmark(eager_round) > 0
