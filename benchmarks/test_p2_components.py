"""P2 (added) — component micro-benchmarks.

Costs of the moving parts the other experiments compose: the rule matcher,
one T_P application, parsing, the storage layer's revision chain, and the
serialization round-trips.
"""

import pytest

from repro import parse_program
from repro.core.consequence import tp_step
from repro.core.grounding import match_rule
from repro.lang.parser import parse_object_base
from repro.lang.pretty import format_object_base
from repro.storage import VersionedStore, dump_base_json, load_base_json
from repro.workloads import (
    enterprise_base,
    paper_example_program,
    salary_raise_program,
)

RAISE_RULE = salary_raise_program()[0]


def test_p2_matcher(benchmark):
    base = enterprise_base(n_employees=200, seed=22)
    bindings = benchmark(lambda: list(match_rule(RAISE_RULE, base)))
    assert len(bindings) == 200


def test_p2_single_tp_application(benchmark):
    base = enterprise_base(n_employees=200, seed=22)
    rules = list(salary_raise_program())
    step = benchmark(lambda: tp_step(rules, base))
    assert len(step.new_states) == 200


def test_p2_parse_program(benchmark):
    from repro.workloads.enterprise import _PAPER_PROGRAM

    program = benchmark(lambda: parse_program(_PAPER_PROGRAM))
    assert len(program) == 4


def test_p2_parse_object_base(benchmark):
    text = format_object_base(enterprise_base(n_employees=200, seed=22))
    base = benchmark(lambda: parse_object_base(text))
    assert len(base.objects()) == 200


def test_p2_store_revision_chain(benchmark):
    base = enterprise_base(n_employees=50, seed=22)
    program = salary_raise_program()

    def three_rounds():
        store = VersionedStore(base)
        for quarter in range(3):
            store.apply(program, tag=f"q{quarter}")
        return store

    store = benchmark(three_rounds)
    assert len(store) == 4


def test_p2_json_round_trip(benchmark):
    base = enterprise_base(n_employees=100, seed=22)
    loaded = benchmark(lambda: load_base_json(dump_base_json(base)))
    assert loaded == base
