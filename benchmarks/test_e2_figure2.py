"""E2 — Figure 2: the enterprise update-process, exact version structure.

Paper expectation (Figure 2 + Section 2.3): stratification
{rule1,rule2} < {rule3} < {rule4}; phil ⇒ mod(phil)[$4600] ⇒
ins(mod(phil))[+hpe]; bob ⇒ mod(bob)[$4620] ⇒ del(mod(bob))[fired];
ob' = {phil: empl, hpe, mgr, $4600}.
Measured: the full apply() pipeline on the literal 2-object base, and on
generated enterprises keeping the same rule shapes.
"""

import pytest

from repro import Oid, UpdateEngine, query
from repro.core.terms import UpdateKind, wrap
from repro.workloads import (
    enterprise_base,
    enterprise_update_program,
    paper_example_base,
    paper_example_program,
)

INS, DEL, MOD = UpdateKind.INSERT, UpdateKind.DELETE, UpdateKind.MODIFY


def test_e2_figure2_literal(benchmark, engine):
    base = paper_example_base()
    program = paper_example_program()

    result = benchmark(lambda: engine.apply(program, base))

    assert result.stratification.names() == [
        ["rule1", "rule2"], ["rule3"], ["rule4"],
    ]
    assert result.final_versions[Oid("phil")] == wrap(INS, wrap(MOD, Oid("phil")))
    assert result.final_versions[Oid("bob")] == wrap(DEL, wrap(MOD, Oid("bob")))
    assert query(result.result_base, "mod(phil).sal -> S") == [{"S": 4600.0}]
    assert query(result.result_base, "mod(bob).sal -> S") == [{"S": 4620.0}]
    assert query(result.new_base, "phil.isa -> hpe") == [{}]
    assert query(result.new_base, "bob.isa -> X") == []


def test_e2_figure2_trace(benchmark):
    """Timing with full tracing + snapshots (the Figure-2 renderer)."""
    tracing = UpdateEngine(collect_trace=True, collect_snapshots=True)
    base = paper_example_base()
    program = paper_example_program()

    result = benchmark(lambda: tracing.apply(program, base))

    text = result.trace.render(objects=(Oid("phil"), Oid("bob")))
    assert "mod(phil): " in text and "del(mod(bob)): " in text


@pytest.mark.parametrize("n_employees", [25, 100])
def test_e2_enterprise_scaled(benchmark, engine, n_employees):
    base = enterprise_base(n_employees=n_employees, overpaid_ratio=0.2, seed=3)
    program = enterprise_update_program(hpe_threshold=4000)

    result = benchmark(lambda: engine.apply(program, base))

    # rule 3 compares *post-raise* salaries: predict the fired set exactly
    managers = {str(a["E"]) for a in query(base, "E.pos -> mgr")}
    salaries = {str(a["E"]): a["S"] for a in query(base, "E.sal -> S")}

    def raised(name: str) -> float:
        return salaries[name] * 1.1 + (200 if name in managers else 0)

    expected_fired = {
        str(a["E"])
        for a in query(base, "E.boss -> B")
        if raised(str(a["E"])) > raised(str(a["B"]))
    }
    survivors = {str(a["E"]) for a in query(result.new_base, "E.isa -> empl")}
    assert survivors == set(salaries) - expected_fired
    for answer in query(result.new_base, "E.isa -> hpe"):
        salary = query(result.new_base, f"{answer['E']}.sal -> S")[0]["S"]
        assert salary > 4000
