"""E12 — the "variant of stratified Datalog" substrate.

Paper expectation (Section 2.1): methods correspond to predicates; the
update language rests on stratified-Datalog machinery.  The substrate must
therefore behave like the textbook: semi-naive evaluation equals naive
evaluation and wins on recursive workloads as the graph grows.
Measured: transitive closure on chains and random graphs under both modes
— semi-naive should win clearly on the larger inputs (the crossover
claim), and the methods-as-predicates conversion must round-trip.
"""

import pytest

from repro.baselines import database_to_object_base, object_base_to_database
from repro.core.terms import Oid
from repro.datalog import Database, DatalogEngine, DatalogProgram
from repro.datalog.ast import DatalogLiteral as L
from repro.datalog.ast import DatalogRule
from repro.workloads import enterprise_base
from repro.workloads.synthetic import random_edge_database

A = DatalogEngine.atom

TC = DatalogProgram(
    [
        DatalogRule(A("path", "X", "Y"), (L(A("edge", "X", "Y")),), "base"),
        DatalogRule(
            A("path", "X", "Z"),
            (L(A("path", "X", "Y")), L(A("edge", "Y", "Z"))),
            "step",
        ),
    ]
)


def chain_db(n: int) -> Database:
    db = Database()
    for i in range(n):
        db.add("edge", (Oid(f"n{i}"), Oid(f"n{i + 1}")))
    return db


@pytest.mark.parametrize("mode", ["naive", "seminaive"])
@pytest.mark.parametrize("n", [30, 60])
def test_e12_transitive_closure_chain(benchmark, mode, n):
    db = chain_db(n)
    engine = DatalogEngine(mode)

    result = benchmark(lambda: engine.run(TC, db))
    assert len(result.rows("path", 2)) == n * (n + 1) // 2


@pytest.mark.parametrize("mode", ["naive", "seminaive"])
def test_e12_random_graph(benchmark, mode):
    db = random_edge_database(n_nodes=40, n_edges=90, seed=12)
    engine = DatalogEngine(mode)

    result = benchmark(lambda: engine.run(TC, db))
    assert result.rows("path", 2)


def test_e12_methods_as_predicates_round_trip(benchmark):
    base = enterprise_base(n_employees=100, seed=12)

    def round_trip():
        return database_to_object_base(object_base_to_database(base))

    assert benchmark(round_trip) == base
