"""E9 — Section 2.1: "for safe rules only a finite number of new versions
can be derived during evaluation".

Paper expectation: safe rules bound the functor depth of derivable VIDs by
the deepest head pattern, so versions number at most #objects x (depth+1)
and evaluation terminates without any guard.
Measured: version counts and time as head depth and object count sweep.
"""

import pytest

from repro import UpdateEngine
from repro.core.terms import depth
from repro.workloads.synthetic import random_object_base, version_chain_program


@pytest.mark.parametrize("k", [2, 6, 12])
def test_e9_versions_bounded_by_head_depth(benchmark, engine, k):
    base = random_object_base(n_objects=5, seed=9)
    program = version_chain_program(k)

    outcome = benchmark(lambda: engine.evaluate(program, base))

    versions = outcome.result_base.existing_versions()
    n_objects = len(base.objects())
    assert all(depth(v) <= k for v in versions)
    assert len(versions) == n_objects * (k + 1)


@pytest.mark.parametrize("n_objects", [5, 20, 80])
def test_e9_versions_linear_in_objects(benchmark, engine, n_objects):
    base = random_object_base(n_objects=n_objects, seed=9)
    program = version_chain_program(4)

    outcome = benchmark(lambda: engine.evaluate(program, base))
    assert len(outcome.result_base.existing_versions()) == n_objects * 5


def test_e9_no_guard_needed(engine):
    """Termination holds with the iteration cap effectively disabled."""
    from repro.core.evaluation import EvaluationOptions, evaluate

    base = random_object_base(n_objects=10, seed=9)
    program = version_chain_program(6)
    outcome = evaluate(
        program, base, EvaluationOptions(max_iterations_per_stratum=10**9)
    )
    assert outcome.iterations < 100
