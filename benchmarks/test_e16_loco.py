"""E16 — §2.4 LOCO comparison: update by inheritance with overriding.

Paper expectation: in LOCO "updates are controlled by the inheritance
mechanism of the language.  However updates cannot be defined by rules;
instead again in a 'manual' way new rules have to be introduced into the
isa-hierarchy."
Measured: the n-employee salary raise done the LOCO way (one hand-made
instance per employee, n hierarchy insertions, n per-instance derivations)
next to the paper's single rule over all employees — the manual-update tax
as a function of n.
"""

import pytest

from repro import UpdateEngine, parse_object_base, parse_program, query
from repro.baselines import LocoHierarchy, LocoObject
from repro.baselines.logres import LogresRule
from repro.datalog import DatalogEngine
from repro.datalog.ast import DatalogLiteral, PredicateAtom
from repro.core.terms import Oid

A = DatalogEngine.atom


def _plus(head: PredicateAtom) -> LogresRule:
    return LogresRule(head, (), True)


def _build_hierarchy(n: int) -> LocoHierarchy:
    hierarchy = LocoHierarchy()
    hierarchy.add(LocoObject("employee", (), (_plus(A("status", "active")),)))
    for i in range(n):
        hierarchy.add(
            LocoObject(f"e{i}", ("employee",), (_plus(A("sal", 1000 + i)),))
        )
    return hierarchy


@pytest.mark.parametrize("n", [10, 50])
def test_e16_loco_manual_instances(benchmark, n):
    def loco_raise():
        hierarchy = _build_hierarchy(n)
        states = []
        for i in range(n):
            instance = hierarchy.update_instance(
                f"e{i}", (_plus(A("sal", 1100 + i)),)
            )
            states.append(hierarchy.state_of(instance.name))
        return states

    states = benchmark(loco_raise)
    for i, state in enumerate(states):
        assert DatalogEngine.query(state, "sal", (None,)) == [(1100 + i,)]
        assert DatalogEngine.query(state, "status", (None,)) == [("active",)]


@pytest.mark.parametrize("n", [10, 50])
def test_e16_versioned_single_rule(benchmark, engine, n):
    base = parse_object_base(
        "\n".join(f"e{i}.isa -> empl. e{i}.sal -> {1000 + i}." for i in range(n))
    )
    program = parse_program(
        "raise: mod[E].sal -> (S, S2) <= E.isa -> empl, E.sal -> S, "
        "S2 = S + 100."
    )

    result = benchmark(lambda: engine.apply(program, base))

    salaries = {a["E"]: a["S"] for a in query(result.new_base, "E.sal -> S")}
    assert salaries == {f"e{i}": 1100 + i for i in range(n)}
