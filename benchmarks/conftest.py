"""Shared benchmark fixtures and reporting helpers."""

from __future__ import annotations

import pytest

from repro import UpdateEngine


@pytest.fixture(scope="session")
def engine() -> UpdateEngine:
    return UpdateEngine()


@pytest.fixture(scope="session")
def quiet_engine() -> UpdateEngine:
    """Engine without the Section 5 run-time check (E7 compares both)."""
    return UpdateEngine(check_linearity=False)
