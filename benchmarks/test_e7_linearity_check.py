"""E7 — Section 5: the version-linearity run-time check.

Paper expectation: "a run-time check during the computation of result(P)
is appropriate, because its realization seems to be not expensive", and
the check must reject programs like {mod[o].m -> (a,b); del[o].m -> a}.
Measured: evaluation with and without the incremental check (the overhead
claim), plus detection cost on the violating program.
"""

import pytest

from repro import UpdateEngine, VersionLinearityError
from repro.lang.parser import parse_object_base, parse_program
from repro.workloads import enterprise_base, paper_example_program
from repro.workloads.synthetic import version_chain_program, random_object_base


@pytest.mark.parametrize("checked", [True, False], ids=["check-on", "check-off"])
def test_e7_overhead(benchmark, checked):
    """The paper's cheapness claim: on/off should be within noise."""
    engine = UpdateEngine(check_linearity=checked)
    base = enterprise_base(n_employees=100, overpaid_ratio=0.2, seed=7)
    program = paper_example_program()

    result = benchmark(lambda: engine.evaluate(program, base))
    assert result.result_base is not None


@pytest.mark.parametrize("k", [4, 8])
def test_e7_overhead_on_deep_chains(benchmark, k):
    """Deep chains maximise subterm comparisons; still cheap."""
    engine = UpdateEngine(check_linearity=True)
    base = random_object_base(n_objects=10, seed=7)
    program = version_chain_program(k)

    outcome = benchmark(lambda: engine.evaluate(program, base))
    assert len(outcome.final_versions) == len(base.objects())


def test_e7_violation_detected(benchmark, engine):
    base = parse_object_base("o.m -> a. o.trigger -> yes.")
    program = parse_program(
        """
        m: mod[o].m -> (a, b) <= o.trigger -> yes.
        d: del[o].m -> a <= o.trigger -> yes.
        """
    )

    def attempt():
        with pytest.raises(VersionLinearityError):
            engine.apply(program, base)
        return True

    assert benchmark(attempt)
