"""E1 — Section 2.1: the salary raise terminates and applies exactly once.

Paper expectation: the intuitive one-rule raise is a terminating update and
every employee is raised exactly once (versions prevent update loops).
Measured: evaluation time as the employee count grows; the assertion block
verifies the exactly-once semantics at every size.
"""

import pytest

from repro import query
from repro.workloads import enterprise_base, salary_raise_program


@pytest.mark.parametrize("n_employees", [10, 50, 200])
def test_e1_salary_raise_exactly_once(benchmark, engine, n_employees):
    base = enterprise_base(n_employees=n_employees, seed=1)
    program = salary_raise_program()
    before = {a["E"]: a["S"] for a in query(base, "E.isa -> empl, E.sal -> S")}

    result = benchmark(lambda: engine.apply(program, base))

    after = {a["E"]: a["S"] for a in query(result.new_base, "E.isa -> empl, E.sal -> S")}
    assert set(after) == set(before)
    for name, old_salary in before.items():
        # exactly once: 1.1x, never 1.21x
        assert after[name] == pytest.approx(old_salary * 1.1)


def test_e1_termination_iterations(engine):
    """The rule only sees OID-hosted employees, so the stratum converges in
    one productive round plus the fixpoint round — independent of size."""
    for n_employees in (10, 100, 400):
        base = enterprise_base(n_employees=n_employees, seed=2)
        outcome = engine.evaluate(salary_raise_program(), base)
        assert outcome.iterations == 2
