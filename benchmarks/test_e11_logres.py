"""E11 — Section 2.4: Logres-style modules vs automatic version control.

Paper expectation: Logres gives the user "a flexible, however 'manual'
means for control" — the module order is the user's responsibility.  With
the intended order (raise, fire, hpe) the result matches the versioned
engine; swapping fire before raise reproduces the unintended base of E6.
Measured: module execution under both orders, and the versioned engine on
the same (converted) data for a like-for-like timing comparison.
"""

import pytest

from repro import UpdateEngine, query
from repro.baselines import object_base_to_database
from repro.baselines.logres import enterprise_modules
from repro.datalog import DatalogEngine
from repro.workloads import paper_example_base, paper_example_program


@pytest.fixture(scope="module")
def variant_base():
    return paper_example_base(bob_salary=4100)


def test_e11_intended_order(benchmark, variant_base):
    program = enterprise_modules()
    db = object_base_to_database(variant_base)

    result = benchmark(lambda: program.run(db))

    salaries = dict(DatalogEngine.query(result, "sal", (None, None)))
    assert salaries["phil"] == pytest.approx(4600.0)
    assert salaries["bob"] == pytest.approx(4510.0)
    hpe = {row[0] for row in DatalogEngine.query(result, "isa", (None, "hpe"))}
    assert hpe == {"phil", "bob"}


def test_e11_wrong_order(benchmark, variant_base):
    program = enterprise_modules().reordered(["fire", "raise", "hpe"])
    db = object_base_to_database(variant_base)

    result = benchmark(lambda: program.run(db))

    # the manual-control hazard: bob is gone, although the intended update
    # (raise first) would have kept him
    salaries = dict(DatalogEngine.query(result, "sal", (None, None)))
    assert set(salaries) == {"phil"}


def test_e11_versioned_reference(benchmark, engine, variant_base):
    program = paper_example_program()

    result = benchmark(lambda: engine.apply(program, variant_base))

    salaries = {a["E"]: a["S"] for a in query(result.new_base, "E.sal -> S")}
    assert salaries == {
        "phil": pytest.approx(4600.0),
        "bob": pytest.approx(4510.0),
    }


def test_e11_intended_order_agrees_with_versioned(engine, variant_base):
    versioned = engine.apply(paper_example_program(), variant_base)
    logres = enterprise_modules().run(object_base_to_database(variant_base))

    versioned_salaries = {
        a["E"]: a["S"] for a in query(versioned.new_base, "E.sal -> S")
    }
    logres_salaries = {
        name: value
        for name, value in DatalogEngine.query(logres, "sal", (None, None))
    }
    assert versioned_salaries == pytest.approx(logres_salaries)
