"""E5 — Section 4: the stratification machinery.

Paper expectation: the enterprise program stratifies as {r1,r2},{r3,r4}
under condition (a) alone and {r1,r2},{r3},{r4} under (a)-(d); the
hypothetical program as four singletons (footnote 3).
Measured: stratification cost versus rule count (depth-k chain programs
have k strata and quadratic pairwise unification work).
"""

import pytest

from repro import stratify
from repro.workloads import hypothetical_program, paper_example_program
from repro.workloads.synthetic import version_chain_program


def test_e5_paper_program_full(benchmark):
    program = paper_example_program()
    strata = benchmark(lambda: stratify(program))
    assert strata.names() == [["rule1", "rule2"], ["rule3"], ["rule4"]]


def test_e5_paper_program_condition_a(benchmark):
    program = paper_example_program()
    strata = benchmark(lambda: stratify(program, conditions="a"))
    assert strata.names() == [["rule1", "rule2"], ["rule3", "rule4"]]


def test_e5_hypothetical_footnote3(benchmark):
    program = hypothetical_program()
    strata = benchmark(lambda: stratify(program))
    assert strata.names() == [["rule1"], ["rule2"], ["rule3"], ["rule4"]]


@pytest.mark.parametrize("k", [8, 16, 32])
def test_e5_cost_vs_rule_count(benchmark, k):
    program = version_chain_program(k)
    strata = benchmark(lambda: stratify(program))
    assert len(strata) == k  # one stratum per update group
