"""E15 — the full §2.4 control spectrum, plus the termination contrast.

Paper expectation (§2.4): update needs control; the alternatives are
implicit resolution strategies (top-down, not reproduced — the paper is a
bottom-up approach), explicit user control (RDL1 networks), module order
(Logres, E11), or nothing (E6).  The paper's versioning derives the control
from the rules themselves.  §2.1 adds the termination contrast: version
identities exclude update loops structurally, while Datalog-with-deletions
semantics ([AV91]) admits two-line oscillators.
Measured: the enterprise update under an RDL-style network (correct and
miswired), and the oscillator detection cost in the deltalog baseline next
to the versioned engine terminating on the analogous program.
"""

import pytest

from repro import UpdateEngine, parse_object_base, parse_program
from repro.baselines import (
    DeltalogProgram,
    NonTerminationError,
    Once,
    RdlProgram,
    Saturate,
    Seq,
    object_base_to_database,
)
from repro.baselines.logres import LogresRule, enterprise_modules
from repro.datalog import Database, DatalogEngine
from repro.datalog.ast import DatalogLiteral as L
from repro.workloads import paper_example_base

A = DatalogEngine.atom


def _network(order):
    modules = {m.name: m.rules for m in enterprise_modules().modules}
    return RdlProgram(Seq(tuple(Saturate(modules[name]) for name in order)))


def test_e15_rdl_intended_network(benchmark):
    db = object_base_to_database(paper_example_base(bob_salary=4100))
    program = _network(["raise", "fire", "hpe"])

    result = benchmark(lambda: program.run(db))

    salaries = dict(DatalogEngine.query(result, "sal", (None, None)))
    assert salaries["bob"] == pytest.approx(4510.0)


def test_e15_rdl_miswired_network(benchmark):
    db = object_base_to_database(paper_example_base(bob_salary=4100))
    program = _network(["fire", "raise", "hpe"])

    result = benchmark(lambda: program.run(db))

    salaries = dict(DatalogEngine.query(result, "sal", (None, None)))
    assert "bob" not in salaries  # explicit control, explicitly wrong


def test_e15_deltalog_oscillator_detection(benchmark):
    program = DeltalogProgram(
        [
            LogresRule(A("p", "X"), (L(A("q", "X")), L(A("p", "X"), False)), True, "on"),
            LogresRule(A("p", "X"), (L(A("p", "X")),), False, "off"),
        ]
    )
    edb = Database.from_tuples([("q", "a")])

    def detect():
        with pytest.raises(NonTerminationError) as excinfo:
            program.run(edb)
        return excinfo.value.cycle_length

    assert benchmark(detect) == 2


def test_e15_versioned_analogue_terminates(benchmark, engine):
    base = parse_object_base("a.q -> yes.")
    program = parse_program(
        """
        on:  ins[X].p -> yes <= X.q -> yes.
        off: del[ins(X)].p -> yes <= ins(X).p -> yes.
        """
    )

    outcome = benchmark(lambda: engine.evaluate(program, base))
    assert outcome.iterations <= 5  # structural termination, no oscillation
