"""E13 — Section 6: quantification over VIDs, done carefully.

Paper expectation: "more expressive power can be gained by allowing to
quantify over VIDs ... however, such an extension must be done carefully
not to destroy the termination properties."
Reproduction findings measured here:

* body-position version variables (?W) are terminating — they only bind
  versions that already exist — and one generic audit rule replaces a
  whole family of depth-specialised rules;
* the specialised family stops at its hard-coded depth (the
  expressiveness gap), while the generic rule covers any history;
* head-position version variables are rejected up front (condition (a)
  would force a strict self-loop) — the paper's own stratification
  machinery marks the dangerous half of its proposed extension.
"""

import pytest

from repro import UpdateEngine, parse_object_base, parse_program, query
from repro.core.errors import ProgramError
from repro.ext import audit_history_program
from repro.ext.vidvars import specialised_audit_program


def _history_base(n_objects: int, levels: int):
    lines = [f"o{i}.sal -> {100 + i}." for i in range(n_objects)]
    base = parse_object_base("\n".join(lines))
    base.add_object("ledger")
    rules = ["m1: mod[E].sal -> (S, S2) <= E.sal -> S, S2 = S + 10, E.exists -> E."]
    prefix = "mod(E)"
    for level in range(2, levels + 1):
        rules.append(
            f"m{level}: mod[{prefix}].sal -> (S, S2) <= "
            f"{prefix}.sal -> S, S2 = S + 10, E.sal -> SX."
        )
        prefix = f"mod({prefix})"
    return UpdateEngine().evaluate(parse_program("\n".join(rules)), base).result_base


@pytest.mark.parametrize("levels", [2, 4])
def test_e13_generic_audit(benchmark, engine, levels):
    base = _history_base(n_objects=10, levels=levels)
    program = audit_history_program("sal")

    outcome = benchmark(lambda: engine.evaluate(program, base))

    history = [a["S"] for a in query(outcome.result_base, "ins(ledger).hist@o0 -> S")]
    assert sorted(history) == [100 + 10 * i for i in range(levels + 1)]


@pytest.mark.parametrize("levels", [2, 4])
def test_e13_specialised_audit(benchmark, engine, levels):
    base = _history_base(n_objects=10, levels=levels)
    program = specialised_audit_program("sal", levels)

    outcome = benchmark(lambda: engine.evaluate(program, base))

    history = [a["S"] for a in query(outcome.result_base, "ins(ledger).hist@o0 -> S")]
    assert sorted(history) == [100 + 10 * i for i in range(levels + 1)]


def test_e13_expressiveness_gap(engine):
    """The depth-2 specialised program misses the deeper history that the
    single generic rule picks up."""
    base = _history_base(n_objects=4, levels=5)
    generic = engine.evaluate(audit_history_program("sal"), base)
    shallow = engine.evaluate(specialised_audit_program("sal", 2), base)
    q = "ins(ledger).hist@o0 -> S"
    assert len(query(generic.result_base, q)) == 6
    assert len(query(shallow.result_base, q)) == 3


def test_e13_head_position_rejected(engine):
    base = parse_object_base("a.m -> 1.")
    program = parse_program("r: ins[?W].t -> 1 <= ?W.m -> V.")
    with pytest.raises(ProgramError):
        engine.evaluate(program, base)
